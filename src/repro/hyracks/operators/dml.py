"""DML operators: INSERT / UPSERT / DELETE with index maintenance.

Incoming record tuples are hash-partitioned on primary key by the
connector feeding these operators, so each partition applies only its own
records — through the node's TransactionalPartition, which gives every
record mutation the WAL + lock entity-transaction treatment (feature 9).
Each operator emits one count tuple per partition; a downstream aggregate
sums them into the statement's "N records affected" result.
"""

from __future__ import annotations

from repro.hyracks.expressions import RuntimeExpr
from repro.hyracks.job import OperatorDescriptor


class InsertOp(OperatorDescriptor):
    """INSERT: record expression evaluated per input tuple; duplicates
    raise (and abort the statement)."""

    name = "insert"

    def __init__(self, dataset: str, record: RuntimeExpr):
        self.dataset = dataset
        self.record = record

    def run(self, ctx, partition, inputs):
        txn_part = ctx.txn_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        count = 0
        for tup in inputs[0]:
            txn_part.insert(self.record.evaluate(tup))
            count += 1
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(count)
        ctx.cost.tuples_out += 1
        return [(count,)]

    def __repr__(self):
        return f"insert({self.dataset})"


class UpsertOp(OperatorDescriptor):
    """UPSERT (Fig. 3(d)): insert or replace by primary key."""

    name = "upsert"

    def __init__(self, dataset: str, record: RuntimeExpr):
        self.dataset = dataset
        self.record = record

    def run(self, ctx, partition, inputs):
        txn_part = ctx.txn_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        count = 0
        for tup in inputs[0]:
            txn_part.upsert(self.record.evaluate(tup))
            count += 1
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(count)
        ctx.cost.tuples_out += 1
        return [(count,)]

    def __repr__(self):
        return f"upsert({self.dataset})"


class DeleteOp(OperatorDescriptor):
    """DELETE: the input carries the primary keys to remove (produced by
    the compiled WHERE pipeline)."""

    name = "delete"

    def __init__(self, dataset: str, pk_exprs: list[RuntimeExpr]):
        self.dataset = dataset
        self.pk_exprs = list(pk_exprs)

    def run(self, ctx, partition, inputs):
        txn_part = ctx.txn_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        count = 0
        for tup in inputs[0]:
            pk = tuple(e.evaluate(tup) for e in self.pk_exprs)
            if txn_part.delete(pk) is not None:
                count += 1
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(len(inputs[0]))
        ctx.cost.tuples_out += 1
        return [(count,)]

    def __repr__(self):
        return f"delete({self.dataset})"


class LoadOp(OperatorDescriptor):
    """LOAD DATASET: bulk ingestion *without* per-record transaction
    overhead (the initial-load path; the dataset must be empty in real
    AsterixDB — here we just bypass the WAL, as LOAD is redone, not
    replayed)."""

    name = "load"

    def __init__(self, dataset: str, record: RuntimeExpr):
        self.dataset = dataset
        self.record = record

    def run(self, ctx, partition, inputs):
        storage = ctx.storage_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        count = 0
        for tup in inputs[0]:
            storage.upsert(self.record.evaluate(tup))
            count += 1
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(count)
        ctx.cost.tuples_out += 1
        return [(count,)]

    def __repr__(self):
        return f"load({self.dataset})"
