"""Join operators: hybrid hash join and nested-loop join.

The hash join is the partitioned-parallel workhorse (build on port 1,
probe on port 0): under its frame budget it is a classic in-memory hash
join; over budget it grace-partitions both sides to run files and recurses
per partition pair — so E4 can push joins far past memory and watch the
I/O grow gracefully instead of the operator falling over.

Join kinds: inner, left outer (missing-padded, per SQL++), left semi
(what quantified expressions over datasets decorrelate into), and left
anti (NOT EXISTS).
"""

from __future__ import annotations

from repro.adm.values import MISSING, fnv1a_bytes
from repro.hyracks.expressions import (
    RuntimeExpr,
    compile_predicate,
    evaluate_predicate,
)
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.runfile import RunFileWriter

JOIN_KINDS = ("inner", "leftouter", "leftsemi", "leftanti")


class HybridHashJoinOp(OperatorDescriptor):
    """Equi-join on key fields; port 0 = probe/left, port 1 = build/right.

    Key matching follows SQL++ equality: a key containing MISSING or null
    never matches anything (``a = b`` is unknown, and only True joins),
    matching what the nested-loop join's interpreted ``eq`` predicate
    does — important now that the optimizer rewrites computed equi-keys
    (``ON m.authorId = u.id``) into hash joins via fresh key variables.
    Unknown-keyed tuples are screened out before build/probe: build-side
    ones are dropped (they can never appear in any output), probe-side
    ones short-circuit to their unmatched outcome (padding for left
    outer, pass-through for left anti).
    """

    num_inputs = 2
    name = "hybrid-hash-join"
    streaming = False     # pipeline breaker: the build side must be
                          # complete before the probe can start

    def __init__(self, left_keys: list[int], right_keys: list[int],
                 kind: str = "inner",
                 residual: RuntimeExpr | None = None,
                 memory_frames: int | None = None,
                 right_width: int | None = None,
                 build_side: int = 1):
        if kind not in JOIN_KINDS:
            raise ValueError(f"unknown join kind {kind!r}")
        if build_side not in (0, 1):
            raise ValueError(f"build_side must be 0 or 1, got {build_side}")
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.kind = kind
        self.residual = residual
        self.memory_frames = memory_frames
        self.right_width = right_width  # for outer padding
        #: which input the hash table is built on (1 = the classic
        #: build-on-right default; 0 = build on the left when the
        #: optimizer estimates it is the smaller input).  Output is
        #: byte-identical either way — only the spill threshold and
        #: memory footprint change.
        self.build_side = build_side
        self.spill_rounds = 0           # observability for E4
        self._residual_pred = None      # compiled residual predicate

    def prepare(self, config):
        if self.residual is not None:
            self._residual_pred = compile_predicate(self.residual)

    def _residual_ok(self, joined) -> bool:
        if self.residual is None:
            return True
        pred = self._residual_pred
        if pred is not None:
            return pred(joined)
        return evaluate_predicate(self.residual, joined)

    @staticmethod
    def _has_unknown_key(tup, fields) -> bool:
        for i in fields:
            v = tup[i]
            if v is MISSING or v is None:
                return True
        return False

    def run(self, ctx, partition, inputs):
        left, right = inputs
        pad_width = (self.right_width if self.right_width is not None
                     else (len(right[0]) if right else 0))
        # screen unknown keys once, before spill partitioning, so the
        # grace recursion only ever sees matchable tuples
        out = []
        if any(self._has_unknown_key(t, self.right_keys) for t in right):
            right = [t for t in right
                     if not self._has_unknown_key(t, self.right_keys)]
        screened_left = [t for t in left
                         if self._has_unknown_key(t, self.left_keys)]
        if screened_left:
            left = [t for t in left
                    if not self._has_unknown_key(t, self.left_keys)]
            if self.kind == "leftouter":
                padding = (MISSING,) * pad_width
                out.extend(t + padding for t in screened_left)
            elif self.kind == "leftanti":
                out.extend(screened_left)
        desired = (self.memory_frames if self.memory_frames is not None
                   else ctx.config.node.join_memory_frames)
        grant = ctx.acquire_memory(desired, label="join")
        try:
            budget = max(2, grant.frames * ctx.frame_size)
            out.extend(self._join(ctx, left, right, budget, depth=0,
                                  pad_width=pad_width))
        finally:
            ctx.release_memory(grant)
        ctx.cost.tuples_out += len(out)
        return out

    def _join(self, ctx, left, right, budget, depth, pad_width):
        build = left if self.build_side == 0 else right
        if len(build) <= budget or depth >= 8:
            return self._in_memory_join(ctx, left, right, pad_width)
        # grace partitioning: split both sides by key hash into fan-out
        # buckets spilled to run files, then recurse bucket by bucket
        self.spill_rounds += 1
        fan_out = max(2, min(16, (len(right) + budget - 1) // budget))
        seed = 0x5151 + depth
        lk, rk = tuple(self.left_keys), tuple(self.right_keys)
        left_parts = [RunFileWriter(ctx, f"hj_l{depth}") for _ in range(fan_out)]
        right_parts = [RunFileWriter(ctx, f"hj_r{depth}")
                       for _ in range(fan_out)]
        for tup in left:
            h = fnv1a_bytes(ctx.key_bytes(tup, lk), seed=seed)
            ctx.charge_hash(1)
            left_parts[h % fan_out].write(tup)
        for tup in right:
            h = fnv1a_bytes(ctx.key_bytes(tup, rk), seed=seed)
            ctx.charge_hash(1)
            right_parts[h % fan_out].write(tup)
        out = []
        for lw, rw in zip(left_parts, right_parts):
            lr, rr = lw.finish(), rw.finish()
            try:
                lpart, rpart = list(lr), list(rr)
            finally:
                lr.close()               # idempotent after exhaustion
                rr.close()
            out.extend(self._join(ctx, lpart, rpart, budget, depth + 1,
                                  pad_width))
        return out

    def _in_memory_join(self, ctx, left, right, pad_width):
        if self.build_side == 0:
            return self._in_memory_join_build_left(ctx, left, right,
                                                   pad_width)
        lk, rk = tuple(self.left_keys), tuple(self.right_keys)
        table: dict[bytes, list] = {}
        for tup in right:
            key = ctx.key_bytes(tup, rk)
            ctx.charge_hash(1)
            table.setdefault(key, []).append(tup)
        out = []
        padding = (MISSING,) * pad_width
        kind = self.kind
        for tup in left:
            key = ctx.key_bytes(tup, lk)
            ctx.charge_hash(1)
            matched = False
            for rtup in table.get(key, ()):
                joined = tup + rtup
                if not self._residual_ok(joined):
                    continue
                matched = True
                if kind == "inner" or kind == "leftouter":
                    out.append(joined)
                elif kind == "leftsemi":
                    out.append(tup)
                    break
                elif kind == "leftanti":
                    break
            if not matched:
                if kind == "leftouter":
                    out.append(tup + padding)
                elif kind == "leftanti":
                    out.append(tup)
        ctx.charge_cpu(len(left) + len(right))
        return out

    def _in_memory_join_build_left(self, ctx, left, right, pad_width):
        """Build on the LEFT input, probe with the right — chosen by the
        optimizer when the left is estimated smaller.  Matches are
        gathered per left tuple (in right-input order) and emitted in a
        final left-major pass, so the output — order included — is
        byte-identical to the build-on-right path; only the hash-table
        size (and with it the grace-spill threshold) differs.  Per-tuple
        hash and CPU charges are symmetric with the default path, so
        in-memory simulated cost is identical too."""
        lk, rk = tuple(self.left_keys), tuple(self.right_keys)
        table: dict[bytes, list] = {}
        for i, tup in enumerate(left):
            key = ctx.key_bytes(tup, lk)
            ctx.charge_hash(1)
            table.setdefault(key, []).append(i)
        matches: list[list] = [[] for _ in left]
        for rtup in right:
            key = ctx.key_bytes(rtup, rk)
            ctx.charge_hash(1)
            for i in table.get(key, ()):
                matches[i].append(rtup)
        out = []
        padding = (MISSING,) * pad_width
        kind = self.kind
        for i, tup in enumerate(left):
            matched = False
            for rtup in matches[i]:
                joined = tup + rtup
                if not self._residual_ok(joined):
                    continue
                matched = True
                if kind == "inner" or kind == "leftouter":
                    out.append(joined)
                elif kind == "leftsemi":
                    out.append(tup)
                    break
                elif kind == "leftanti":
                    break
            if not matched:
                if kind == "leftouter":
                    out.append(tup + padding)
                elif kind == "leftanti":
                    out.append(tup)
        ctx.charge_cpu(len(left) + len(right))
        return out

    def __repr__(self):
        build = "" if self.build_side == 1 else ",build=left"
        return (f"hash-join[{self.kind}{build}]({self.left_keys}="
                f"{self.right_keys})")


class NestedLoopJoinOp(OperatorDescriptor):
    """Arbitrary-predicate join (non-equi conditions, e.g. spatial or
    range).  Port 1 (inner) is broadcast to every partition."""

    num_inputs = 2
    name = "nested-loop-join"

    def __init__(self, condition: RuntimeExpr | None, kind: str = "inner",
                 right_width: int | None = None):
        if kind not in JOIN_KINDS:
            raise ValueError(f"unknown join kind {kind!r}")
        self.condition = condition
        self.kind = kind
        self.right_width = right_width
        self._cond_pred = None          # compiled condition predicate

    def prepare(self, config):
        if self.condition is not None:
            self._cond_pred = compile_predicate(self.condition)

    def run(self, ctx, partition, inputs):
        left, right = inputs
        out = []
        pad_width = (self.right_width if self.right_width is not None
                     else (len(right[0]) if right else 0))
        padding = (MISSING,) * pad_width
        pred = self._cond_pred
        if pred is None and self.condition is not None:
            cond = self.condition
            pred = lambda joined: evaluate_predicate(cond, joined)  # noqa: E731
        for ltup in left:
            matched = False
            for rtup in right:
                joined = ltup + rtup
                if pred is not None and not pred(joined):
                    continue
                matched = True
                if self.kind in ("inner", "leftouter"):
                    out.append(joined)
                elif self.kind == "leftsemi":
                    out.append(ltup)
                    break
                elif self.kind == "leftanti":
                    break
            if not matched:
                if self.kind == "leftouter":
                    out.append(ltup + padding)
                elif self.kind == "leftanti":
                    out.append(ltup)
        ctx.charge_cpu(len(left) * max(1, len(right)))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"nl-join[{self.kind}]({self.condition!r})"
