"""Source operators: dataset scans, external scans, literals."""

from __future__ import annotations

from repro.hyracks.job import OperatorDescriptor


class EmptyTupleSourceOp(OperatorDescriptor):
    """Algebricks' ETS: the single empty tuple that roots every plan
    (INSERT payload construction starts from it)."""

    num_inputs = 0
    partition_count = 1
    name = "empty-tuple-source"

    def run(self, ctx, partition, inputs):
        return [()]


class InMemorySourceOp(OperatorDescriptor):
    """A constant collection source (literal FROM sources, test rigs)."""

    num_inputs = 0
    partition_count = 1
    name = "in-memory-source"

    def __init__(self, tuples: list):
        self.tuples = [tuple(t) if isinstance(t, (list, tuple)) else (t,)
                       for t in tuples]

    def run(self, ctx, partition, inputs):
        ctx.charge_cpu(len(self.tuples))
        return list(self.tuples)

    def run_iter(self, ctx, partition, inputs):
        yield from self.tuples
        ctx.charge_cpu(len(self.tuples))


class DatasetScanOp(OperatorDescriptor):
    """Full scan of a dataset partition: emits (pk fields..., record).

    Runs at full width; partition p scans the dataset's storage partition
    p on whichever node hosts it — the shared-nothing scan of Fig. 1."""

    num_inputs = 0
    name = "dataset-scan"

    def __init__(self, dataset: str):
        self.dataset = dataset

    def run(self, ctx, partition, inputs):
        return list(self.run_iter(ctx, partition, inputs))

    def run_iter(self, ctx, partition, inputs):
        """Incremental scan: a pipelined stage pulls tuples one frame at
        a time instead of materializing the whole partition."""
        storage = ctx.storage_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        count = 0
        for pk, record in storage.scan():
            count += 1
            yield (*pk, record)
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(count)
        ctx.cost.tuples_out += count

    def __repr__(self):
        return f"dataset-scan({self.dataset})"


class ExternalScanOp(OperatorDescriptor):
    """Scan an external dataset in situ (feature 6, Fig. 3(b)).

    The adapter yields (split_index, record) splits; partition p reads the
    splits assigned to it round-robin, which is how parallel reads of
    HDFS blocks / local files are modeled."""

    num_inputs = 0
    name = "external-scan"

    def __init__(self, adapter):
        self.adapter = adapter      # repro.external adapter object

    def run(self, ctx, partition, inputs):
        return list(self.run_iter(ctx, partition, inputs))

    def run_iter(self, ctx, partition, inputs):
        num_partitions = ctx.node.cluster_num_partitions
        count = 0
        for split_index, record in self.adapter.read_splits():
            if split_index % num_partitions != partition:
                continue
            count += 1
            yield (record,)
        # adapters track bytes read; charge sequential page equivalents
        pages = self.adapter.take_bytes_read() // ctx.node.fm.page_size + 1
        ctx.charge_io(0, 0, pages, 0)
        ctx.charge_cpu(count)
        ctx.cost.tuples_out += count

    def __repr__(self):
        return f"external-scan({self.adapter!r})"
