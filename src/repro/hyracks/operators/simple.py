"""Streaming operators: assign, select, project, limit, union, unnest,
distinct.

Most operators here set ``streaming = True`` and provide an
:class:`~repro.hyracks.job.OperatorTask` so the executor can fuse them
into pipelined stages.  Every streaming task defers its batch cost
charges to ``finish`` using the same integer counts ``run`` would use,
so the simulated clock is bit-identical whether a query executes
materialized or pipelined (see docs/ARCHITECTURE.md, "Job execution").
"""

from __future__ import annotations

from repro.adm.values import MISSING, Multiset
from repro.hyracks.expressions import (
    RuntimeExpr,
    compile_expr,
    compile_predicate,
    evaluate_predicate,
)
from repro.hyracks.job import OperatorDescriptor, OperatorTask


class AssignOp(OperatorDescriptor):
    """Append one computed field per expression to each tuple."""

    name = "assign"
    streaming = True

    def __init__(self, exprs: list[RuntimeExpr]):
        self.exprs = list(exprs)
        self._evals = None     # compiled closures, set by prepare()

    def prepare(self, config):
        self._evals = [compile_expr(e) for e in self.exprs]

    def _transform(self, batch: list) -> list:
        """Batch-level projection of one frame (or full input) through
        either the compiled closures or the interpreter."""
        evals = self._evals
        if evals is None:
            exprs = self.exprs
            return [tup + tuple(e.evaluate(tup) for e in exprs)
                    for tup in batch]
        if len(evals) == 1:
            f = evals[0]
            return [tup + (f(tup),) for tup in batch]
        return [tup + tuple(f(tup) for f in evals) for tup in batch]

    def run(self, ctx, partition, inputs):
        out = self._transform(inputs[0])
        ctx.charge_cpu(len(out) * max(1, len(self.exprs)))
        ctx.cost.tuples_out += len(out)
        return out

    def start(self, ctx, partition):
        return _AssignTask(self, ctx, partition)

    def __repr__(self):
        return f"assign({len(self.exprs)} exprs)"


class _AssignTask(OperatorTask):
    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._count = 0

    def push(self, frame):
        out = self.op._transform(frame)
        self._count += len(out)
        return out

    def finish(self):
        self.ctx.charge_cpu(self._count * max(1, len(self.op.exprs)))
        self.ctx.cost.tuples_out += self._count
        return []


class SelectOp(OperatorDescriptor):
    """Filter: keep tuples whose condition evaluates to True."""

    name = "select"
    streaming = True

    def __init__(self, condition: RuntimeExpr):
        self.condition = condition
        self._pred = None      # compiled predicate, set by prepare()

    def prepare(self, config):
        self._pred = compile_predicate(self.condition)

    def _filter(self, batch: list) -> list:
        pred = self._pred
        if pred is None:
            cond = self.condition
            return [t for t in batch if evaluate_predicate(cond, t)]
        return [t for t in batch if pred(t)]

    def run(self, ctx, partition, inputs):
        ctx.charge_cpu(len(inputs[0]))
        out = self._filter(inputs[0])
        ctx.cost.tuples_out += len(out)
        return out

    def start(self, ctx, partition):
        return _SelectTask(self, ctx, partition)

    def __repr__(self):
        return f"select({self.condition!r})"


class _SelectTask(OperatorTask):
    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._seen = 0
        self._kept = 0

    def push(self, frame):
        self._seen += len(frame)
        out = self.op._filter(frame)
        self._kept += len(out)
        return out

    def finish(self):
        self.ctx.charge_cpu(self._seen)
        self.ctx.cost.tuples_out += self._kept
        return []


class ProjectOp(OperatorDescriptor):
    """Keep only the named field positions, in order."""

    name = "project"
    streaming = True

    def __init__(self, fields: list[int]):
        self.fields = list(fields)

    def run(self, ctx, partition, inputs):
        fields = self.fields
        out = [tuple(t[i] for i in fields) for t in inputs[0]]
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out

    def start(self, ctx, partition):
        return _ProjectTask(self, ctx, partition)

    def __repr__(self):
        return f"project({self.fields})"


class _ProjectTask(OperatorTask):
    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._count = 0

    def push(self, frame):
        fields = self.op.fields
        out = [tuple(t[i] for i in fields) for t in frame]
        self._count += len(out)
        return out

    def finish(self):
        self.ctx.charge_cpu(self._count)
        self.ctx.cost.tuples_out += self._count
        return []


class LimitOp(OperatorDescriptor):
    """LIMIT/OFFSET; runs on the gathered (single-partition) stream."""

    partition_count = 1
    name = "limit"
    streaming = True

    def __init__(self, limit: int | None, offset: int = 0):
        self.limit = limit
        self.offset = offset

    def run(self, ctx, partition, inputs):
        data = inputs[0][self.offset:]
        if self.limit is not None:
            data = data[: self.limit]
        ctx.cost.tuples_out += len(data)
        return list(data)

    def start(self, ctx, partition):
        return _LimitTask(self, ctx, partition)

    def __repr__(self):
        return f"limit({self.limit}, offset={self.offset})"


class _LimitTask(OperatorTask):
    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._skipped = 0
        self._emitted = 0

    def push(self, frame):
        out = []
        limit = self.op.limit
        for tup in frame:
            if self._skipped < self.op.offset:
                self._skipped += 1
                continue
            if limit is not None and self._emitted >= limit:
                break
            out.append(tup)
            self._emitted += 1
        return out

    def finish(self):
        self.ctx.cost.tuples_out += self._emitted
        return []


class UnionAllOp(OperatorDescriptor):
    """UNION ALL of two inputs with identical schemas."""

    num_inputs = 2
    name = "union-all"

    def run(self, ctx, partition, inputs):
        out = list(inputs[0]) + list(inputs[1])
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out


class UnnestOp(OperatorDescriptor):
    """UNNEST: one output tuple per item of a collection-valued expression.

    Non-collections and empty collections produce no tuples (inner unnest
    semantics); ``outer=True`` keeps the input tuple with MISSING."""

    name = "unnest"
    streaming = True

    def __init__(self, collection: RuntimeExpr, outer: bool = False,
                 positional: bool = False):
        self.collection = collection
        self.outer = outer
        self.positional = positional
        self._coll = None      # compiled collection closure

    def prepare(self, config):
        self._coll = compile_expr(self.collection)

    def _expand(self, tup) -> list:
        coll = (self._coll(tup) if self._coll is not None
                else self.collection.evaluate(tup))
        items = coll if isinstance(coll, (list, Multiset)) else []
        if not items and self.outer:
            extra = (MISSING, 0) if self.positional else (MISSING,)
            return [tup + extra]
        if self.positional:
            return [tup + (item, pos) for pos, item in enumerate(items)]
        return [tup + (item,) for item in items]

    def run(self, ctx, partition, inputs):
        out = []
        for tup in inputs[0]:
            out.extend(self._expand(tup))
        ctx.charge_cpu(len(out) + len(inputs[0]))
        ctx.cost.tuples_out += len(out)
        return out

    def start(self, ctx, partition):
        return _UnnestTask(self, ctx, partition)

    def __repr__(self):
        return f"unnest({self.collection!r})"


class _UnnestTask(OperatorTask):
    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._seen = 0
        self._emitted = 0

    def push(self, frame):
        out = []
        for tup in frame:
            out.extend(self.op._expand(tup))
        self._seen += len(frame)
        self._emitted += len(out)
        return out

    def finish(self):
        self.ctx.charge_cpu(self._emitted + self._seen)
        self.ctx.cost.tuples_out += self._emitted
        return []


class DistinctOp(OperatorDescriptor):
    """Hash-based duplicate elimination over the whole tuple (inputs are
    hash-partitioned on the distinct fields, so per-partition dedup is
    globally correct)."""

    name = "distinct"
    streaming = True

    def __init__(self, fields: list[int] | None = None):
        self.fields = fields    # None = whole tuple
        # key-column tuple for the job's key cache (None = whole tuple)
        self._cols = None if fields is None else tuple(fields)

    def run(self, ctx, partition, inputs):
        # key bytes batch through the job cache in one call; the hash
        # charge stays per tuple so the float accumulation is identical
        # to the pipelined task's per-frame pushes
        seen = set()
        out = []
        keys = ctx.key_bytes_many(inputs[0], self._cols)
        for tup, key in zip(inputs[0], keys):
            ctx.charge_hash(1)
            if key not in seen:
                seen.add(key)
                out.append(tup)
        ctx.charge_cpu(len(inputs[0]))
        ctx.cost.tuples_out += len(out)
        return out

    def start(self, ctx, partition):
        return _DistinctTask(self, ctx, partition)


class _DistinctTask(OperatorTask):
    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._seen_keys = set()
        self._seen = 0
        self._kept = 0

    def push(self, frame):
        out = []
        seen_keys = self._seen_keys
        keys = self.ctx.key_bytes_many(frame, self.op._cols)
        for tup, key in zip(frame, keys):
            self.ctx.charge_hash(1)
            if key not in seen_keys:
                seen_keys.add(key)
                out.append(tup)
        self._seen += len(frame)
        self._kept += len(out)
        return out

    def finish(self):
        self.ctx.charge_cpu(self._seen)
        self.ctx.cost.tuples_out += self._kept
        return []


class MaterializeOp(OperatorDescriptor):
    """Identity operator used as an explicit stage boundary (stays
    non-streaming on purpose — its whole job is to break a pipeline)."""

    name = "materialize"

    def run(self, ctx, partition, inputs):
        ctx.cost.tuples_out += len(inputs[0])
        return list(inputs[0])


class RunningAggregateOp(OperatorDescriptor):
    """Appends a running counter (used for positional variables)."""

    partition_count = 1
    name = "running-aggregate"
    streaming = True

    def run(self, ctx, partition, inputs):
        out = [tup + (i + 1,) for i, tup in enumerate(inputs[0])]
        ctx.cost.tuples_out += len(out)
        return out

    def start(self, ctx, partition):
        return _RunningAggregateTask(self, ctx, partition)


class _RunningAggregateTask(OperatorTask):
    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._count = 0

    def push(self, frame):
        start = self._count
        out = [tup + (start + i + 1,) for i, tup in enumerate(frame)]
        self._count += len(out)
        return out

    def finish(self):
        self.ctx.cost.tuples_out += self._count
        return []
