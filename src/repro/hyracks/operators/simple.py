"""Streaming operators: assign, select, project, limit, union, unnest,
distinct."""

from __future__ import annotations

from repro.adm.values import MISSING, Multiset, canonical_bytes
from repro.hyracks.expressions import RuntimeExpr, evaluate_predicate
from repro.hyracks.job import OperatorDescriptor


class AssignOp(OperatorDescriptor):
    """Append one computed field per expression to each tuple."""

    name = "assign"

    def __init__(self, exprs: list[RuntimeExpr]):
        self.exprs = list(exprs)

    def run(self, ctx, partition, inputs):
        out = []
        for tup in inputs[0]:
            values = tuple(e.evaluate(tup) for e in self.exprs)
            out.append(tup + values)
        ctx.charge_cpu(len(out) * max(1, len(self.exprs)))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"assign({len(self.exprs)} exprs)"


class SelectOp(OperatorDescriptor):
    """Filter: keep tuples whose condition evaluates to True."""

    name = "select"

    def __init__(self, condition: RuntimeExpr):
        self.condition = condition

    def run(self, ctx, partition, inputs):
        ctx.charge_cpu(len(inputs[0]))
        out = [t for t in inputs[0] if evaluate_predicate(self.condition, t)]
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"select({self.condition!r})"


class ProjectOp(OperatorDescriptor):
    """Keep only the named field positions, in order."""

    name = "project"

    def __init__(self, fields: list[int]):
        self.fields = list(fields)

    def run(self, ctx, partition, inputs):
        fields = self.fields
        out = [tuple(t[i] for i in fields) for t in inputs[0]]
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"project({self.fields})"


class LimitOp(OperatorDescriptor):
    """LIMIT/OFFSET; runs on the gathered (single-partition) stream."""

    partition_count = 1
    name = "limit"

    def __init__(self, limit: int | None, offset: int = 0):
        self.limit = limit
        self.offset = offset

    def run(self, ctx, partition, inputs):
        data = inputs[0][self.offset:]
        if self.limit is not None:
            data = data[: self.limit]
        ctx.cost.tuples_out += len(data)
        return list(data)

    def __repr__(self):
        return f"limit({self.limit}, offset={self.offset})"


class UnionAllOp(OperatorDescriptor):
    """UNION ALL of two inputs with identical schemas."""

    num_inputs = 2
    name = "union-all"

    def run(self, ctx, partition, inputs):
        out = list(inputs[0]) + list(inputs[1])
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out


class UnnestOp(OperatorDescriptor):
    """UNNEST: one output tuple per item of a collection-valued expression.

    Non-collections and empty collections produce no tuples (inner unnest
    semantics); ``outer=True`` keeps the input tuple with MISSING."""

    name = "unnest"

    def __init__(self, collection: RuntimeExpr, outer: bool = False,
                 positional: bool = False):
        self.collection = collection
        self.outer = outer
        self.positional = positional

    def run(self, ctx, partition, inputs):
        out = []
        for tup in inputs[0]:
            coll = self.collection.evaluate(tup)
            items = coll if isinstance(coll, (list, Multiset)) else []
            if not items and self.outer:
                extra = (MISSING, 0) if self.positional else (MISSING,)
                out.append(tup + extra)
                continue
            for pos, item in enumerate(items):
                extra = (item, pos) if self.positional else (item,)
                out.append(tup + extra)
        ctx.charge_cpu(len(out) + len(inputs[0]))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"unnest({self.collection!r})"


class DistinctOp(OperatorDescriptor):
    """Hash-based duplicate elimination over the whole tuple (inputs are
    hash-partitioned on the distinct fields, so per-partition dedup is
    globally correct)."""

    name = "distinct"

    def __init__(self, fields: list[int] | None = None):
        self.fields = fields    # None = whole tuple

    def run(self, ctx, partition, inputs):
        seen = set()
        out = []
        for tup in inputs[0]:
            key_parts = (tup if self.fields is None
                         else tuple(tup[i] for i in self.fields))
            key = b"|".join(canonical_bytes(v) for v in key_parts)
            ctx.charge_hash(1)
            if key not in seen:
                seen.add(key)
                out.append(tup)
        ctx.charge_cpu(len(inputs[0]))
        ctx.cost.tuples_out += len(out)
        return out


class MaterializeOp(OperatorDescriptor):
    """Identity operator used as an explicit stage boundary."""

    name = "materialize"

    def run(self, ctx, partition, inputs):
        ctx.cost.tuples_out += len(inputs[0])
        return list(inputs[0])


class RunningAggregateOp(OperatorDescriptor):
    """Appends a running counter (used for positional variables)."""

    partition_count = 1
    name = "running-aggregate"

    def run(self, ctx, partition, inputs):
        out = [tup + (i + 1,) for i, tup in enumerate(inputs[0])]
        ctx.cost.tuples_out += len(out)
        return out
