"""The simulated shared-nothing cluster (paper Fig. 1).

"The system is based on a traditional shared-nothing architecture, with
each node in a cluster managing one or more storage and index partitions
for its datasets ... the execution of the Hyracks jobs is coordinated by
the cluster controller."

Per DESIGN.md (Substitutions), the cluster is simulated in one process:

* :class:`NodeController` — one per node: its own I/O devices (real
  directories with real page files), buffer cache, WAL, transaction
  manager, and dataset partitions.
* :class:`ClusterController` — owns the topology, the dataset→partition
  map (primary-key hash partitioning), and job execution.

Jobs are split into *stages* at pipeline breakers and executed by the
pipelined, parallel executor (:mod:`repro.hyracks.executor`): within a
stage, fused chains of streaming operators pass ``frame_size``-tuple
frames instead of materializing; across a stage, the partitions run
concurrently — one worker per node, each node's partitions in ascending
order under the node's lock — while the profiler accounts them as
parallel (elapsed = max over partitions).  The job's simulated time is
the sum of operator elapsed times along the (serialized) dependency
chain, applied identically to every configuration and to both executor
modes (``config.executor``), which is what lets experiment E3 exhibit
the scale-out *shape* of the paper's 180-node test on one machine.

Layer contract: this module accepts a validated
:class:`~repro.hyracks.job.JobSpecification` (from
:mod:`repro.algebricks.jobgen`) and returns a :class:`JobResult` whose
:class:`~repro.hyracks.profiler.JobProfile` carries per-(operator,
partition) costs.  It knows nothing about SQL++, logical plans, or the
catalog — only operators, connectors, and partitions.  Observability:
:meth:`ClusterController.run_job` emits one ``stage`` event per executed
stage and one ``operator`` span event per operator when handed a trace
span, and feeds the process-wide metrics registry (``hyracks.jobs``,
``hyracks.job_simulated_us``, ``hyracks.network_tuples``, plus the
``hyracks.executor.*`` / ``hyracks.pipeline.*`` families — see
docs/OBSERVABILITY.md and docs/ARCHITECTURE.md for the full tour).
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from dataclasses import dataclass, field

from repro.common.config import ClusterConfig
from repro.common.errors import MetadataError
from repro.hyracks.executor import JobExecutor, make_worker_pool
from repro.hyracks.job import JobSpecification, prepare_job
from repro.hyracks.memory import MemoryGovernor
from repro.hyracks.profiler import JobProfile
from repro.observability.metrics import get_registry
from repro.resilience import (
    NO_FAULTS,
    FaultInjector,
    MemoryBudgetFault,
    NodeCrashFault,
    NodeState,
    ResilienceFault,
    RetryPolicy,
    SimulatedClock,
)
from repro.storage.buffer_cache import BufferCache
from repro.storage.dataset_storage import PartitionStorage, SecondaryIndexSpec
from repro.storage.file_manager import FileManager
from repro.storage.iodevice import IODevice, IOStats
from repro.storage.lsm.merge_policy import PrefixMergePolicy
from repro.txn import (
    LogManager,
    RecoveryManager,
    TransactionManager,
    TransactionalPartition,
)


class NodeController:
    """One shared-nothing node: devices, cache, WAL, and its partitions.

    A node is a :class:`~repro.resilience.NodeState` lifecycle: ALIVE
    until :meth:`crash` (LSM memory components, buffer cache contents,
    un-fsynced WAL tail, and temp runfiles are lost; sealed disk
    components and the fsynced WAL prefix survive in the node's real
    directories), then FAILED until the cluster drives
    :meth:`begin_restart` / ``recover_partition...`` / WAL replay /
    :meth:`finish_restart` back to ALIVE.
    """

    def __init__(self, node_id: int, root: str, config: ClusterConfig,
                 injector: FaultInjector | None = None):
        self.node_id = node_id
        self.config = config
        self.root = root
        self.state = NodeState.ALIVE
        #: Node-scoped fault injector: every hit from this node's
        #: components carries ``node=node_id``, so schedules can pin
        #: rules to one node's (serialized, deterministic) hit stream.
        self.injector = (injector or NO_FAULTS).bind(node=node_id)
        #: Serializes task execution on this node: the parallel executor
        #: runs one task at a time per node (in ascending partition
        #: order), so the buffer cache, WAL, and file manager see the
        #: exact same operation sequence as under the serial executor.
        self.lock = threading.RLock()
        self.devices = [
            IODevice(d, os.path.join(root, f"iodevice{d}"),
                     latency_us=config.node.io_latency_us)
            for d in range(config.node.num_io_devices)
        ]
        self.fm = FileManager(self.devices, config.page_size,
                              injector=self.injector)
        #: Node-level working-memory arbiter: every operator / query
        #: admission / feed batch takes its frames from this one budget.
        self.memory = MemoryGovernor(config.node.query_memory_frames,
                                     node_id=node_id)
        self.cache = BufferCache(self.fm, config.node.buffer_cache_pages)
        self.log = LogManager(os.path.join(root, "txnlog", "log"),
                              injector=self.injector)
        self.txn = TransactionManager(self.log)
        self.partitions: dict[tuple, PartitionStorage] = {}
        self.txn_partitions: dict[tuple, TransactionalPartition] = {}
        self.cluster_num_partitions = config.num_partitions
        self._crash_validators: dict[tuple, object] = {}

    # -- lifecycle ------------------------------------------------------------

    def _require_alive(self) -> None:
        if self.state is not NodeState.ALIVE:
            raise NodeCrashFault(
                f"node {self.node_id} is {self.state.value}",
                site="node.access", node=self.node_id,
            )

    def crash(self) -> None:
        """Simulate node death.  Volatile state dies: LSM memory
        components (the partition objects), dirty buffer-cache pages,
        the WAL tail past the last fsync, temp runfiles.  Durable state
        — sealed components, manifests, the fsynced WAL prefix — stays
        on disk for :meth:`begin_restart` to reopen."""
        if self.state is not NodeState.ALIVE:
            return
        self.state = NodeState.FAILED
        # catalog-installed record validators are node-memory state the
        # restart must re-install onto the recovered partitions
        self._crash_validators = {
            key: ps.validator for key, ps in self.partitions.items()
            if ps.validator is not None
        }
        self.partitions.clear()
        self.txn_partitions.clear()
        self.log.crash()
        self.fm.close()
        # memory grants die with the node: bump the governor generation
        # so releases of pre-crash grants become no-ops
        self.memory.reset()
        for device in self.devices:
            shutil.rmtree(os.path.join(device.root, "temp"),
                          ignore_errors=True)

    def begin_restart(self) -> None:
        """Reopen OS-level resources over the node's directories; the
        caller then recovers partitions and replays the WAL."""
        if self.state is not NodeState.FAILED:
            raise MetadataError(
                f"node {self.node_id} is {self.state.value}, not failed"
            )
        self.state = NodeState.RESTARTING
        self.fm = FileManager(self.devices, self.config.page_size,
                              injector=self.injector)
        self.cache = BufferCache(self.fm,
                                 self.config.node.buffer_cache_pages)
        self.log = LogManager(os.path.join(self.root, "txnlog", "log"),
                              injector=self.injector)
        self.txn = TransactionManager(self.log)

    def finish_restart(self) -> None:
        if self.state is not NodeState.RESTARTING:
            raise MetadataError(
                f"node {self.node_id} is {self.state.value}, "
                f"not restarting"
            )
        for key, validator in self._crash_validators.items():
            storage = self.partitions.get(key)
            if storage is not None:
                storage.validator = validator
        self._crash_validators = {}
        self.state = NodeState.ALIVE

    # -- partition management -------------------------------------------------

    def create_partition(self, dataset: str, partition_id: int,
                         pk_fields: tuple) -> PartitionStorage:
        self._require_alive()
        key = (dataset, partition_id)
        if key in self.partitions:
            raise MetadataError(
                f"partition {partition_id} of {dataset} already on node "
                f"{self.node_id}"
            )
        storage = PartitionStorage(
            self.fm, self.cache, dataset, partition_id, pk_fields,
            memory_budget_bytes=(self.config.node.memory_component_pages
                                 * self.config.page_size),
            merge_policy=PrefixMergePolicy(),
        )
        self.partitions[key] = storage
        self.txn_partitions[key] = TransactionalPartition(storage, self.txn)
        return storage

    def recover_partition(self, dataset: str, partition_id: int,
                          pk_fields: tuple, specs=()) -> PartitionStorage:
        """Reopen a partition from disk after a restart (manifests only;
        the caller replays the WAL afterwards)."""
        key = (dataset, partition_id)
        storage = PartitionStorage.recover(
            self.fm, self.cache, dataset, partition_id, pk_fields,
            specs=specs,
            memory_budget_bytes=(self.config.node.memory_component_pages
                                 * self.config.page_size),
            merge_policy=PrefixMergePolicy(),
        )
        self.partitions[key] = storage
        self.txn_partitions[key] = TransactionalPartition(storage, self.txn)
        return storage

    def seed_txn_ids_from_log(self) -> None:
        """After a restart, continue transaction ids past the log's max so
        an old uncommitted entity transaction can never be confused with a
        new committed one during a later recovery."""
        max_txn = 0
        for record in self.log.scan():
            max_txn = max(max_txn, record.txn_id)
        self.txn.seed_ids(max_txn + 1)

    def replay_wal(self) -> int:
        """Replay committed entity operations into this node's recovered
        partitions; returns operations replayed."""
        manager = RecoveryManager(self.log)
        return manager.recover(self.partitions)

    def drop_partition(self, dataset: str, partition_id: int) -> None:
        key = (dataset, partition_id)
        storage = self.partitions.pop(key, None)
        self.txn_partitions.pop(key, None)
        if storage is not None:
            storage.drop()

    def get_partition(self, dataset: str, partition_id: int):
        self._require_alive()
        try:
            return self.partitions[(dataset, partition_id)]
        except KeyError:
            raise MetadataError(
                f"no partition {partition_id} of {dataset} on node "
                f"{self.node_id}"
            ) from None

    def get_txn_partition(self, dataset: str, partition_id: int):
        self._require_alive()
        try:
            return self.txn_partitions[(dataset, partition_id)]
        except KeyError:
            raise MetadataError(
                f"no partition {partition_id} of {dataset} on node "
                f"{self.node_id}"
            ) from None

    # -- temp-file accounting -----------------------------------------------

    def live_temp_files(self) -> list[str]:
        """Paths of run files currently on this node's disks (``temp/``
        under every I/O device).  A healthy idle node has none: spill
        consumers release their run files on exhaustion, early abandon,
        or failure — tests and the chaos harness assert this."""
        found = []
        for device in self.devices:
            temp_root = os.path.join(device.root, "temp")
            for dirpath, _dirnames, filenames in os.walk(temp_root):
                found.extend(os.path.join(dirpath, f) for f in filenames)
        return sorted(found)

    def purge_temp_files(self) -> int:
        """Delete every temp run file on this node — open handles first,
        then any stray on-disk files.  The job retry loop calls this
        between attempts: an aborted attempt's spill files are garbage
        by definition.  Returns the number of files removed."""
        purged = 0
        for handle in self.fm.handles_under("temp/"):
            self.fm.delete_file(handle)
            purged += 1
        for path in self.live_temp_files():
            try:
                os.remove(path)
                purged += 1
            except FileNotFoundError:
                pass
        return purged

    # -- I/O accounting ----------------------------------------------------------

    def io_snapshot(self) -> IOStats:
        total = IOStats()
        for device in self.devices:
            total = total + device.stats
        return total

    def charge_io_delta(self, ctx, before: IOStats) -> None:
        diff = self.io_snapshot().diff(before)
        ctx.charge_io(diff.reads, diff.writes, diff.seq_reads,
                      diff.seq_writes)

    def close(self) -> None:
        self.log.close()
        self.fm.close()


@dataclass
class DatasetInfo:
    name: str
    pk_fields: tuple
    indexes: dict = field(default_factory=dict)   # name -> spec


@dataclass
class JobResult:
    tuples: list
    profile: JobProfile


class ClusterController:
    """Topology + catalog-of-partitions + job executor.

    Also the failure detector and recovery coordinator: faults surfaced
    by a job (via :class:`~repro.resilience.ResilienceFault`) abort the
    in-flight stages, crashed nodes are restarted (partition recovery
    from LSM manifests + WAL replay + transaction-id reseeding), and the
    whole job is retried under the capped exponential backoff of
    ``config.resilience`` — against a simulated clock, so tests and the
    chaos harness never actually sleep."""

    def __init__(self, base_dir: str, config: ClusterConfig | None = None,
                 injector: FaultInjector | None = None):
        self.config = config or ClusterConfig()
        self.base_dir = base_dir
        self.injector = injector or NO_FAULTS
        self.clock = SimulatedClock()
        res = self.config.resilience
        self.retry_policy = RetryPolicy(
            max_attempts=res.max_job_attempts,
            base_delay_us=res.retry_base_us,
            multiplier=res.retry_multiplier,
            cap_us=res.retry_cap_us,
        )
        self.nodes = [
            NodeController(n, os.path.join(base_dir, f"node{n}"),
                           self.config, injector=self.injector)
            for n in range(self.config.num_nodes)
        ]
        self.datasets: dict[str, DatasetInfo] = {}
        self._pool = None                  # lazy node-worker pool

    # -- topology ---------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return self.config.num_partitions

    def node_of_partition(self, partition_id: int) -> NodeController:
        return self.nodes[partition_id // self.config.partitions_per_node]

    def partition_of_key(self, pk: tuple) -> int:
        from repro.adm.values import hash_value

        return hash_value(pk) % self.num_partitions

    # -- dataset DDL ----------------------------------------------------------------

    def create_dataset(self, name: str, pk_fields: tuple) -> DatasetInfo:
        if name in self.datasets:
            raise MetadataError(f"dataset {name} already exists")
        for p in range(self.num_partitions):
            self.node_of_partition(p).create_partition(name, p, pk_fields)
        info = DatasetInfo(name, tuple(pk_fields))
        self.datasets[name] = info
        return info

    def recover_dataset(self, name: str, pk_fields: tuple,
                        specs=()) -> DatasetInfo:
        """Reopen a dataset's partitions from disk (restart path)."""
        if name in self.datasets:
            raise MetadataError(f"dataset {name} already open")
        for p in range(self.num_partitions):
            self.node_of_partition(p).recover_partition(
                name, p, pk_fields, specs)
        info = DatasetInfo(name, tuple(pk_fields),
                           {s.name: s for s in specs})
        self.datasets[name] = info
        return info

    def drop_dataset(self, name: str) -> None:
        info = self.datasets.pop(name, None)
        if info is None:
            raise MetadataError(f"no such dataset {name}")
        for p in range(self.num_partitions):
            self.node_of_partition(p).drop_partition(name, p)

    def create_index(self, dataset: str, spec: SecondaryIndexSpec) -> None:
        info = self._dataset(dataset)
        if spec.name in info.indexes:
            raise MetadataError(f"index {spec.name} already exists")
        for p in range(self.num_partitions):
            node = self.node_of_partition(p)
            node.get_partition(dataset, p).create_secondary(spec)
        info.indexes[spec.name] = spec

    def drop_index(self, dataset: str, index_name: str) -> None:
        info = self._dataset(dataset)
        if index_name not in info.indexes:
            raise MetadataError(f"no such index {index_name}")
        for p in range(self.num_partitions):
            node = self.node_of_partition(p)
            node.get_partition(dataset, p).drop_secondary(index_name)
        del info.indexes[index_name]

    def _dataset(self, name: str) -> DatasetInfo:
        try:
            return self.datasets[name]
        except KeyError:
            raise MetadataError(f"no such dataset {name}") from None

    # -- direct record routing (feeds, examples, and tests use this) ---------------

    def insert_record(self, dataset: str, record: dict,
                      *, upsert: bool = False):
        info = self._dataset(dataset)
        pk = tuple(record[f] for f in info.pk_fields)
        p = self.partition_of_key(pk)
        txn_part = self.node_of_partition(p).get_txn_partition(dataset, p)
        return txn_part.upsert(record) if upsert else txn_part.insert(record)

    def delete_record(self, dataset: str, pk: tuple):
        p = self.partition_of_key(pk)
        return self.node_of_partition(p).get_txn_partition(
            dataset, p).delete(pk)

    def get_record(self, dataset: str, pk: tuple):
        p = self.partition_of_key(pk)
        return self.node_of_partition(p).get_partition(dataset, p).get(pk)

    def scan_dataset(self, dataset: str):
        for p in range(self.num_partitions):
            storage = self.node_of_partition(p).get_partition(dataset, p)
            yield from storage.scan()

    def flush_dataset(self, dataset: str) -> None:
        for p in range(self.num_partitions):
            self.node_of_partition(p).get_partition(dataset, p).flush_all()

    # -- job execution -----------------------------------------------------------------

    def run_job(self, job: JobSpecification,
                span: object = None) -> JobResult:
        """Execute a job DAG; ``span`` (a tracing Span) gets one ``stage``
        event per executed stage and one ``operator`` event per operator
        with its simulated costs.

        Fault handling: a :class:`~repro.resilience.ResilienceFault`
        raised anywhere in an attempt aborts the whole attempt (the
        executor joins every in-flight task before re-raising, so no
        stage is left half-running), crashed nodes are restarted with WAL
        replay, and the job is retried from scratch under capped
        exponential backoff — up to ``config.resilience.max_job_attempts``
        attempts total."""
        job.validate()
        if self.config.executor.compile_expressions:
            # compile every operator's expressions into closures once per
            # job (see docs/PERFORMANCE.md); results and the simulated
            # clock are byte-identical with the toggle off
            prepare_job(job, self.config)
        attempt = 1
        while True:
            self.ensure_alive(span)
            try:
                return self._run_job_once(job, span)
            except ResilienceFault as fault:
                registry = get_registry()
                if isinstance(fault, NodeCrashFault) \
                        and fault.node is not None:
                    self.crash_node(fault.node, span)
                # the aborted attempt's spill files are garbage: crashed
                # nodes cleared theirs in crash(); sweep the alive ones
                self._purge_attempt_temp_files(span)
                if isinstance(fault, MemoryBudgetFault) \
                        or attempt >= self.retry_policy.max_attempts:
                    registry.counter("resilience.job_failures").inc()
                    if span is not None:
                        span.add_event(
                            "job_failed", attempt=attempt,
                            fault=type(fault).__name__, site=fault.site,
                        )
                    raise
                delay = self.retry_policy.backoff(attempt, self.clock)
                registry.counter("resilience.job_retries").inc()
                if span is not None:
                    span.add_event(
                        "job_retry", attempt=attempt,
                        fault=type(fault).__name__, site=fault.site,
                        backoff_us=delay,
                    )
                attempt += 1

    def _run_job_once(self, job: JobSpecification,
                      span: object = None) -> JobResult:
        profile = JobProfile(self.config.cost)
        started = time.perf_counter()
        io_before = self._total_io()
        reservations = self._admit_query(span)
        try:
            result_tuples = JobExecutor(
                self, job, profile, span, reservations=reservations).run()
        finally:
            # the executor has joined every task by now, so operator
            # grants borrowed against these reservations are back
            for grant in reservations.values():
                grant.release()
        diff = self._total_io().diff(io_before)
        profile.physical_reads = diff.total_reads
        profile.physical_writes = diff.total_writes
        profile.wall_seconds = time.perf_counter() - started
        registry = get_registry()
        registry.counter("hyracks.jobs").inc()
        registry.counter("hyracks.network_tuples").inc(
            profile.connector_network_tuples)
        registry.histogram("hyracks.job_simulated_us").observe(
            profile.simulated_us)
        registry.histogram("hyracks.job_wall_seconds").observe(
            profile.wall_seconds)
        return JobResult(result_tuples, profile)

    def _admit_query(self, span: object = None) -> dict:
        """Admission control: reserve ``query_admission_frames`` on every
        node before the job's first task runs, in ascending node order so
        concurrent queries can never deadlock on partial reservations.
        The reservation is the floor operator grants borrow against — an
        admitted query always makes progress, it just spills more.  On
        failure (capped wait expired, or the request can never fit) the
        partial reservation is rolled back and the typed 35xx fault
        propagates to the retry loop."""
        frames = self.config.node.query_admission_frames
        timeout_ms = self.config.node.admission_timeout_ms
        reservations: dict = {}
        try:
            for node in self.nodes:
                reservations[node.node_id] = node.memory.admit(
                    frames, label="query", timeout_ms=timeout_ms,
                    span=span)
        except ResilienceFault:
            for grant in reservations.values():
                grant.release()
            raise
        return reservations

    def _purge_attempt_temp_files(self, span: object = None) -> None:
        """Delete spill files a failed attempt left behind on ALIVE
        nodes (taking each node's lock: the executor has already joined
        its in-flight tasks, so nothing is mid-write)."""
        purged = 0
        for node in self.nodes:
            if node.state is NodeState.ALIVE:
                with node.lock:
                    purged += node.purge_temp_files()
        if purged:
            get_registry().counter("hyracks.temp_files_purged").inc(purged)
            if span is not None:
                span.add_event("temp_files_purged", files=purged)

    # -- failure detection & recovery -------------------------------------------

    def crash_node(self, node_id: int, span: object = None) -> None:
        """Kill a node (idempotent): volatile state is lost, durable
        files survive.  ``resilience.node_crashes`` counts real
        transitions only."""
        node = self.nodes[node_id]
        if node.state is not NodeState.ALIVE:
            return
        node.crash()
        get_registry().counter("resilience.node_crashes").inc()
        if span is not None:
            span.add_event("node_crash", node=node_id)

    def restart_node(self, node_id: int, span: object = None) -> int:
        """Bring a FAILED node back: advance the simulated clock by the
        detection delay, reopen its files, recover every partition it
        hosts from the LSM manifests, reseed transaction ids, replay the
        WAL, and re-install catalog validators.  Returns the number of
        WAL operations replayed."""
        node = self.nodes[node_id]
        if node.state is NodeState.ALIVE:
            return 0
        self.clock.advance(self.config.resilience.detection_delay_us)
        node.begin_restart()
        for name, info in self.datasets.items():
            specs = tuple(info.indexes.values())
            for p in range(self.num_partitions):
                if self.node_of_partition(p) is node:
                    node.recover_partition(name, p, info.pk_fields, specs)
        node.seed_txn_ids_from_log()
        replayed = node.replay_wal()
        node.finish_restart()
        registry = get_registry()
        registry.counter("resilience.node_restarts").inc()
        registry.counter("resilience.wal_replays").inc()
        registry.counter("resilience.wal_records_replayed").inc(replayed)
        if span is not None:
            span.add_event("node_restart", node=node_id,
                           wal_records_replayed=replayed)
        return replayed

    def ensure_alive(self, span: object = None) -> None:
        """Restart any node that is not ALIVE (the failure detector)."""
        for node in self.nodes:
            if node.state is not NodeState.ALIVE:
                self.restart_node(node.node_id, span)

    def handle_fault(self, fault: ResilienceFault,
                     span: object = None) -> None:
        """Recover the cluster after ``fault`` surfaced outside a job
        (e.g. during direct record routing): crash-then-restart the named
        node for crash faults, and make sure every node is ALIVE."""
        if isinstance(fault, NodeCrashFault) and fault.node is not None:
            self.crash_node(fault.node, span)
        self.ensure_alive(span)

    def worker_pool(self):
        """The lazily-created node-worker pool used by the parallel
        executor (one thread per node by default)."""
        if self._pool is None:
            self._pool = make_worker_pool(self.config)
        return self._pool

    def _total_io(self) -> IOStats:
        total = IOStats()
        for node in self.nodes:
            total = total + node.io_snapshot()
        return total

    # -- maintenance ---------------------------------------------------------------------

    def checkpoint(self) -> None:
        for node in self.nodes:
            node.txn.checkpoint(list(node.partitions.values()))

    def recover(self) -> int:
        """Run WAL replay on every node (after reopening partitions)."""
        total = 0
        for node in self.nodes:
            manager = RecoveryManager(node.log)
            total += manager.recover(node.partitions)
        return total

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for node in self.nodes:
            node.close()
