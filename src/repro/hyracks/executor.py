"""The pipelined, parallel Hyracks job executor.

The original executor ran every operator to completion, materialized its
full output, and looped over partitions sequentially.  This module keeps
that model's *accounting* (the simulated clock, per-(operator, partition)
:class:`~repro.hyracks.profiler.PartitionCost` sinks) while executing the
way Hyracks actually does:

* **Stages.**  The job DAG is split into stages at pipeline breakers:
  an edge is fused only when it is a same-width one-to-one connector into
  a single-input *streaming* consumer (``OperatorDescriptor.streaming``).
  Sort, group-by, joins, and the result writer keep ``streaming = False``
  and therefore bound their own stages, exactly the points where real
  Hyracks materializes (see :mod:`repro.hyracks.operators.base`).

* **Frames.**  Within a fused chain, tuples flow in frames of
  ``config.frame_size`` tuples through push-based
  :class:`~repro.hyracks.job.OperatorTask` objects, so peak intermediate
  state inside a stage is one frame per operator, not every operator's
  full output.  Streaming tasks issue the same cost charges ``run``
  would, so the simulated clock is identical with pipelining on or off.

* **Parallel partitions.**  The partitions of a stage execute
  concurrently on a worker pool — one worker per *node*, with each node's
  partitions executed in ascending partition order under the node's lock.
  Every piece of shared mutable state is per-node (buffer cache, WAL,
  file manager, LSM partitions), so each node observes the exact same
  operation sequence as the serial executor and the simulated clock,
  result tuples, and tuple counts are byte-identical in both modes.
  Real page-file I/O (plus the optional emulated device latency,
  ``NodeConfig.io_latency_us``) releases the GIL, so scan/sort/join-heavy
  jobs overlap I/O across nodes.

Wall-clock time is the only thing the modes are allowed to disagree on.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.hyracks.connectors import OneToOneConnector
from repro.hyracks.job import JobSpecification
from repro.hyracks.keys import KeyCache
from repro.hyracks.operators.base import TaskContext
from repro.hyracks.operators.result import ResultWriterOp
from repro.observability.metrics import get_registry
from repro.resilience import NodeCrashFault, NodeState


class _ConnCtx:
    """Cost sink for connector routing; the executor spreads the charge
    across the consuming partitions afterwards.  Carries the executor's
    ``batch_execution`` toggle so the merge connector picks the same key
    strategy (compiled vs per-tuple) the job's operators use."""

    def __init__(self, cost_model, key_cache=None, batch_execution=True):
        self.cost = cost_model
        self.key_cache = key_cache
        self.batch_execution = batch_execution
        self.network_tuples = 0
        self.cpu_us = 0.0

    def charge_network(self, n):
        self.network_tuples += n

    def charge_hash(self, n):
        self.cpu_us += n * self.cost.hash_us

    def charge_compare(self, n):
        self.cpu_us += n * self.cost.compare_us


@dataclass
class Stage:
    """One maximal fused chain of operators (head first)."""

    index: int
    op_ids: list

    @property
    def head(self) -> int:
        return self.op_ids[0]

    @property
    def tail(self) -> int:
        return self.op_ids[-1]

    @property
    def pipelined(self) -> bool:
        return len(self.op_ids) > 1


def _effective_width(op, num_partitions: int) -> int:
    return op.partition_count or num_partitions


def build_stages(job: JobSpecification, num_partitions: int,
                 pipelining: bool) -> list:
    """Split the DAG into stages, fusing streamable one-to-one chains.

    Stages are emitted in an order derived from the job's topological
    order, so executing them sequentially respects every dependency; with
    ``pipelining=False`` every operator is its own stage (the original
    materialize-everything model).
    """
    order = job.topological_order()
    out_edges: dict = {}
    for e in job.edges:
        out_edges.setdefault(e.producer, []).append(e)
    assigned: set = set()
    stages: list = []
    for op_id in order:
        if op_id in assigned:
            continue
        chain = [op_id]
        cur = op_id
        while pipelining:
            outs = out_edges.get(cur, [])
            if len(outs) != 1:
                break
            edge = outs[0]
            consumer = job.operators[edge.consumer]
            if not isinstance(edge.connector, OneToOneConnector):
                break
            if consumer.num_inputs != 1 or not consumer.streaming:
                break
            if (_effective_width(job.operators[cur], num_partitions)
                    != _effective_width(consumer, num_partitions)):
                break
            chain.append(edge.consumer)
            cur = edge.consumer
        assigned.update(chain)
        stages.append(Stage(len(stages), chain))
    return stages


class JobExecutor:
    """Executes one validated job on a cluster controller.

    ``mode`` and ``pipelining`` come from ``config.executor``; the
    coordinator (this class) routes connectors and enforces stage
    barriers on the calling thread, and dispatches per-partition tasks
    either inline (serial) or one worker per node (parallel).
    """

    def __init__(self, cluster, job: JobSpecification, profile, span=None,
                 reservations=None):
        self.cluster = cluster
        self.job = job
        self.profile = profile
        self.span = span
        #: node_id -> the query's admission MemoryGrant on that node
        #: (empty when the caller runs without admission control)
        self.reservations = reservations or {}
        self.config = cluster.config
        self.exec_config = cluster.config.executor
        #: job-lifetime key-bytes/hash memo shared by partitioning
        #: connectors, hash-join build/probe, group-by, and distinct
        self.key_cache = KeyCache()
        registry = get_registry()
        self._m_stages = registry.counter("hyracks.executor.stages")
        self._m_tasks = registry.counter("hyracks.executor.tasks")
        self._m_fused = registry.counter("hyracks.pipeline.fused_chains")
        self._m_frames = registry.counter("hyracks.pipeline.frames")
        self._m_frame_tuples = registry.histogram(
            "hyracks.pipeline.frame_tuples")
        self._m_batch_tuples = registry.counter("hyracks.batch.tuples")

    # -- coordinator ---------------------------------------------------------

    def run(self) -> list:
        job, profile = self.job, self.profile
        stages = build_stages(job, self.cluster.num_partitions,
                              self.exec_config.pipelining)
        # operator profiles are created in topological order, matching the
        # operator ordering the serial executor always reported
        op_profiles = {
            op_id: profile.new_operator(
                repr(job.operators[op_id]),
                estimated_cardinality=getattr(
                    job.operators[op_id], "estimated_cardinality", None),
            )
            for op_id in job.topological_order()
        }
        outputs: dict = {}
        result_tuples: list = []
        for stage in stages:
            started = time.perf_counter()
            stage_outputs = self._run_stage(stage, op_profiles, outputs)
            outputs[stage.tail] = stage_outputs
            width = _effective_width(job.operators[stage.head],
                                     self.cluster.num_partitions)
            self._m_stages.inc()
            if stage.pipelined:
                self._m_fused.inc()
            profile.stages.append({
                "index": stage.index,
                "ops": [repr(job.operators[i]) for i in stage.op_ids],
                "width": width,
                "pipelined": stage.pipelined,
                "wall_seconds": time.perf_counter() - started,
            })
            if self.span is not None:
                self.span.add_event(
                    "stage", index=stage.index, width=width,
                    pipelined=stage.pipelined,
                    ops=[repr(job.operators[i]) for i in stage.op_ids],
                )
            for op_id in stage.op_ids:
                op = job.operators[op_id]
                op_profile = op_profiles[op_id]
                profile.simulated_us += op_profile.elapsed_us
                if self.span is not None:
                    self.span.add_event(
                        "operator", op_id=op_id, op=repr(op), width=width,
                        elapsed_us=op_profile.elapsed_us,
                        tuples_out=op_profile.total_tuples_out,
                    )
                if isinstance(op, ResultWriterOp):
                    result_tuples = op.collected
        self.key_cache.flush_metrics(get_registry())
        return result_tuples

    def _run_stage(self, stage: Stage, op_profiles, outputs) -> list:
        job = self.job
        head_op = job.operators[stage.head]
        width = _effective_width(head_op, self.cluster.num_partitions)
        head_profile = op_profiles[stage.head]
        # route each input edge of the stage head to its partitions
        routed_per_edge = []
        for edge in job.inputs_of(stage.head):
            conn_ctx = _ConnCtx(
                self.config.cost, key_cache=self.key_cache,
                batch_execution=self.exec_config.batch_execution)
            routed = edge.connector.route(
                outputs[edge.producer], width, conn_ctx
            )
            self.profile.connector_network_tuples += conn_ctx.network_tuples
            per_part_net = (
                conn_ctx.network_tuples
                * self.config.cost.network_tuple_us / width
            )
            per_part_cpu = conn_ctx.cpu_us / width
            for p in range(width):
                cost = head_profile.cost(p)
                cost.network_us += per_part_net
                cost.cpu_us += per_part_cpu
            routed_per_edge.append(routed)
        # interior operators get cost entries for every partition, exactly
        # as the materializing executor created them
        for op_id in stage.op_ids[1:]:
            for p in range(width):
                op_profiles[op_id].cost(p)
        # dispatch the partitions
        stage_outputs: list = [None] * width
        node_groups: dict = {}
        for p in range(width):
            node = (self.cluster.nodes[0] if width == 1
                    else self.cluster.node_of_partition(p))
            node_groups.setdefault(node.node_id, (node, []))[1].append(p)
        self._m_tasks.inc(width)

        def run_group(node, partitions):
            for p in partitions:
                stage_outputs[p] = self._run_partition(
                    stage, node, p, routed_per_edge, op_profiles)

        groups = [node_groups[nid] for nid in sorted(node_groups)]
        if self.exec_config.parallel and len(groups) > 1:
            pool = self.cluster.worker_pool()
            futures = [pool.submit(run_group, node, parts)
                       for node, parts in groups]
            errors = []
            for future in futures:
                exc = future.exception()
                if exc is not None:
                    errors.append(exc)
            if errors:
                raise errors[0]
        else:
            for node, parts in groups:
                run_group(node, parts)
        return stage_outputs

    # -- one (stage, partition) task ----------------------------------------

    def _run_partition(self, stage: Stage, node, partition: int,
                       routed_per_edge, op_profiles) -> list:
        job, config = self.job, self.config
        ops = [job.operators[i] for i in stage.op_ids]
        head = ops[0]
        with node.lock:
            # a task scheduled onto a dead node surfaces the crash to the
            # coordinator, which aborts the attempt and retries the job
            if node.state is not NodeState.ALIVE:
                raise NodeCrashFault(
                    f"task for partition {partition} scheduled on "
                    f"{node.state.value} node {node.node_id}",
                    site="executor.task", node=node.node_id,
                )
            node.injector.hit("executor.operator", partition=partition,
                              op=repr(head), stage=stage.index)
            reservation = self.reservations.get(node.node_id)
            head_ctx = TaskContext(
                node, config, op_profiles[stage.head].cost(partition),
                span=self.span, reservation=reservation,
                key_cache=self.key_cache)
            head_inputs = [routed[partition] for routed in routed_per_edge]
            head_ctx.cost.tuples_in += sum(len(x) for x in head_inputs)
            if not stage.pipelined:
                return head.run(head_ctx, partition, head_inputs)
            tasks = [
                op.start(
                    TaskContext(node, config,
                                op_profiles[op_id].cost(partition),
                                span=self.span, reservation=reservation,
                                key_cache=self.key_cache),
                    partition,
                )
                for op_id, op in zip(stage.op_ids[1:], ops[1:])
            ]
            sink: list = []
            frame: list = []
            frame_size = config.frame_size
            for tup in head.run_iter(head_ctx, partition, head_inputs):
                frame.append(tup)
                if len(frame) >= frame_size:
                    self._emit_frame(tasks, 0, frame, sink)
                    frame = []
            if frame:
                self._emit_frame(tasks, 0, frame, sink)
            for i, task in enumerate(tasks):
                tail = task.finish()
                if tail:
                    self._push(tasks, i + 1, tail, sink)
            return sink

    def _emit_frame(self, tasks, start: int, frame: list, sink: list):
        self._m_frames.inc()
        self._m_frame_tuples.observe(len(frame))
        self._m_batch_tuples.inc(len(frame))
        self._push(tasks, start, frame, sink)

    @staticmethod
    def _push(tasks, start: int, data: list, sink: list):
        """Feed ``data`` through ``tasks[start:]``; whatever survives the
        whole chain lands in ``sink``."""
        for task in tasks[start:]:
            task.ctx.cost.tuples_in += len(data)
            data = task.push(data)
            if not data:
                return
        sink.extend(data)


def make_worker_pool(config) -> ThreadPoolExecutor:
    """The cluster's node-worker pool (one worker per node by default)."""
    workers = config.executor.workers or config.num_nodes
    return ThreadPoolExecutor(
        max_workers=max(1, workers), thread_name_prefix="hyracks-node",
    )
