"""Runtime scalar expressions: the interpreted IR and its compiler.

The Algebricks job generator compiles each logical expression into this
small IR, resolving variables to tuple field indexes.  Evaluation follows
SQL++ semantics: unknowns (MISSING/null) propagate through function calls
(see :mod:`repro.functions.registry`), field access on non-objects yields
MISSING, and quantified expressions short-circuit.

``env`` carries lambda-style bindings for variables introduced *inside* an
expression (quantified variables, inline-collection iteration); ordinary
query variables are compiled to :class:`ColumnRef` positions.

Two evaluation strategies coexist:

* ``expr.evaluate(tup, env)`` — tree interpretation, one Python-level
  dispatch per IR node per tuple.  Always available; the reference
  semantics.
* :func:`compile_expr` — walks the tree **once per job** and emits nested
  closures, so per-tuple evaluation pays no attribute lookups, no
  registry indirection, and no argument-list building for the common
  unary/binary shapes.  Operators compile their expressions in
  ``prepare`` (see :meth:`repro.hyracks.job.OperatorDescriptor.prepare`),
  gated by ``ExecutorConfig.compile_expressions``.

Compiled closures MUST be deterministic and side-effect free, and must
produce byte-identical results to ``evaluate`` on every input — the
equivalence suite runs every query with compilation on and off and
compares results and the simulated clock (docs/PERFORMANCE.md states the
invariants).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import MISSING, Multiset
from repro.common.errors import CompilationError
from repro.functions.registry import resolve


class RuntimeExpr:
    """Base class; ``evaluate(tup, env)`` returns an ADM value."""

    def evaluate(self, tup, env=None):
        raise NotImplementedError

    def _compile(self):
        """Return a closure ``(tup, env=None) -> value`` equivalent to
        ``evaluate``.  The default falls back to the interpreter so new
        node types degrade gracefully instead of miscompiling."""
        return self.evaluate

    def columns(self) -> set[int]:
        """All ColumnRef indexes under this expression (projection
        pushdown and join-side analysis use this)."""
        out: set[int] = set()
        self._collect_columns(out)
        return out

    def _collect_columns(self, out: set[int]) -> None:
        pass


@dataclass(frozen=True)
class Const(RuntimeExpr):
    value: object

    def evaluate(self, tup, env=None):
        return self.value

    def _compile(self):
        value = self.value
        return lambda tup, env=None: value

    def __repr__(self):
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class ColumnRef(RuntimeExpr):
    index: int

    def evaluate(self, tup, env=None):
        return tup[self.index]

    def _compile(self):
        index = self.index
        return lambda tup, env=None: tup[index]

    def _collect_columns(self, out):
        out.add(self.index)

    def __repr__(self):
        return f"${self.index}"


@dataclass(frozen=True)
class VarRef(RuntimeExpr):
    """A lambda-bound variable (quantifier/inline-iteration binding)."""

    name: str

    def evaluate(self, tup, env=None):
        if env is None or self.name not in env:
            raise CompilationError(f"unbound variable {self.name}")
        return env[self.name]

    def _compile(self):
        name = self.name

        def lookup(tup, env=None):
            if env is None or name not in env:
                raise CompilationError(f"unbound variable {name}")
            return env[name]

        return lookup

    def __repr__(self):
        return f"VarRef({self.name})"


class FunctionCall(RuntimeExpr):
    """A call to a registered scalar function, with SQL++ unknown
    propagation applied here (pre-resolved for speed)."""

    __slots__ = ("name", "args", "_func")

    def __init__(self, name: str, args: list):
        self.name = name
        self.args = list(args)
        self._func = resolve(name)
        if not self._func.check_arity(len(self.args)):
            raise CompilationError(
                f"wrong number of arguments for {name}: {len(self.args)}"
            )

    def evaluate(self, tup, env=None):
        values = [a.evaluate(tup, env) for a in self.args]
        if not self._func.handles_unknowns:
            for v in values:
                if v is MISSING:
                    return MISSING
            for v in values:
                if v is None:
                    return None
        return self._func.impl(*values)

    def _compile(self):
        impl = self._func.impl
        handles = self._func.handles_unknowns
        arity = len(self.args)
        # Binary calls over direct column/constant operands are the bulk
        # of every predicate and key extractor (field_access($n, 'f'),
        # eq($i, $j), lt($n, c)); fold the operand fetch into the call
        # closure so each evaluation is one closure invocation total.
        if arity == 2:
            a, b = self.args
            if isinstance(a, ColumnRef) and isinstance(b, Const):
                i, c = a.index, b.value
                if handles:
                    return lambda tup, env=None: impl(tup[i], c)

                def col_const(tup, env=None):
                    v = tup[i]
                    if v is MISSING or c is MISSING:
                        return MISSING
                    if v is None or c is None:
                        return None
                    return impl(v, c)

                return col_const
            if isinstance(a, ColumnRef) and isinstance(b, ColumnRef):
                i, j = a.index, b.index
                if handles:
                    return lambda tup, env=None: impl(tup[i], tup[j])

                def col_col(tup, env=None):
                    va, vb = tup[i], tup[j]
                    if va is MISSING or vb is MISSING:
                        return MISSING
                    if va is None or vb is None:
                        return None
                    return impl(va, vb)

                return col_col
            fa, fb = a._compile(), b._compile()
            if handles:
                return lambda tup, env=None: impl(fa(tup, env), fb(tup, env))

            def binary(tup, env=None):
                va = fa(tup, env)
                vb = fb(tup, env)
                if va is MISSING or vb is MISSING:
                    return MISSING
                if va is None or vb is None:
                    return None
                return impl(va, vb)

            return binary
        if arity == 1:
            f0 = self.args[0]._compile()
            if handles:
                return lambda tup, env=None: impl(f0(tup, env))

            def unary(tup, env=None):
                v = f0(tup, env)
                if v is MISSING:
                    return MISSING
                if v is None:
                    return None
                return impl(v)

            return unary
        fns = [a._compile() for a in self.args]
        if handles:
            return lambda tup, env=None: impl(*[f(tup, env) for f in fns])

        def nary(tup, env=None):
            values = [f(tup, env) for f in fns]
            for v in values:
                if v is MISSING:
                    return MISSING
            for v in values:
                if v is None:
                    return None
            return impl(*values)

        return nary

    def _collect_columns(self, out):
        for a in self.args:
            a._collect_columns(out)

    def __repr__(self):
        return f"{self.name}({', '.join(map(repr, self.args))})"


class Quantified(RuntimeExpr):
    """SOME/EVERY var IN collection SATISFIES predicate.

    SQL++ semantics: SOME over an empty collection is false, EVERY is true;
    a non-collection operand yields null."""

    __slots__ = ("some", "var", "collection", "predicate")

    def __init__(self, some: bool, var: str, collection: RuntimeExpr,
                 predicate: RuntimeExpr):
        self.some = some
        self.var = var
        self.collection = collection
        self.predicate = predicate

    def evaluate(self, tup, env=None):
        coll = self.collection.evaluate(tup, env)
        if coll is MISSING:
            return MISSING
        if coll is None:
            return None
        if not isinstance(coll, (list, Multiset)):
            return None
        inner = dict(env) if env else {}
        for item in coll:
            inner[self.var] = item
            result = self.predicate.evaluate(tup, inner)
            if self.some and result is True:
                return True
            if not self.some and result is not True:
                return False
        return not self.some

    def _compile(self):
        coll_f = self.collection._compile()
        pred_f = self.predicate._compile()
        some, var = self.some, self.var

        def quantify(tup, env=None):
            coll = coll_f(tup, env)
            if coll is MISSING:
                return MISSING
            if coll is None:
                return None
            if not isinstance(coll, (list, Multiset)):
                return None
            inner = dict(env) if env else {}
            for item in coll:
                inner[var] = item
                result = pred_f(tup, inner)
                if some and result is True:
                    return True
                if not some and result is not True:
                    return False
            return not some

        return quantify

    def _collect_columns(self, out):
        self.collection._collect_columns(out)
        self.predicate._collect_columns(out)

    def __repr__(self):
        kw = "some" if self.some else "every"
        return (f"{kw} {self.var} in {self.collection!r} "
                f"satisfies {self.predicate!r}")


class CaseExpr(RuntimeExpr):
    """Searched CASE: WHEN cond THEN result ... ELSE default END."""

    __slots__ = ("whens", "default")

    def __init__(self, whens: list, default: RuntimeExpr):
        self.whens = list(whens)      # [(cond_expr, result_expr)]
        self.default = default

    def evaluate(self, tup, env=None):
        for cond, result in self.whens:
            if cond.evaluate(tup, env) is True:
                return result.evaluate(tup, env)
        return self.default.evaluate(tup, env)

    def _compile(self):
        whens = [(c._compile(), r._compile()) for c, r in self.whens]
        default_f = self.default._compile()

        def case(tup, env=None):
            for cond_f, result_f in whens:
                if cond_f(tup, env) is True:
                    return result_f(tup, env)
            return default_f(tup, env)

        return case

    def _collect_columns(self, out):
        for cond, result in self.whens:
            cond._collect_columns(out)
            result._collect_columns(out)
        self.default._collect_columns(out)

    def __repr__(self):
        return f"case({len(self.whens)} whens)"


class ObjectConstructor(RuntimeExpr):
    """{"name": expr, ...} — a MISSING value drops its field, per SQL++."""

    __slots__ = ("pairs",)

    def __init__(self, pairs: list):
        self.pairs = list(pairs)      # [(name_expr, value_expr)]

    def evaluate(self, tup, env=None):
        out = {}
        for name_expr, value_expr in self.pairs:
            name = name_expr.evaluate(tup, env)
            if name is MISSING or name is None:
                continue
            value = value_expr.evaluate(tup, env)
            if value is MISSING:
                continue
            out[name] = value
        return out

    def _compile(self):
        pairs = [(n._compile(), v._compile()) for n, v in self.pairs]

        def construct(tup, env=None):
            out = {}
            for name_f, value_f in pairs:
                name = name_f(tup, env)
                if name is MISSING or name is None:
                    continue
                value = value_f(tup, env)
                if value is MISSING:
                    continue
                out[name] = value
            return out

        return construct

    def _collect_columns(self, out):
        for name_expr, value_expr in self.pairs:
            name_expr._collect_columns(out)
            value_expr._collect_columns(out)

    def __repr__(self):
        return f"object({len(self.pairs)} fields)"


class CollectionConstructor(RuntimeExpr):
    """[...] or {{...}}."""

    __slots__ = ("items", "multiset")

    def __init__(self, items: list, multiset: bool = False):
        self.items = list(items)
        self.multiset = multiset

    def evaluate(self, tup, env=None):
        values = [i.evaluate(tup, env) for i in self.items]
        return Multiset(values) if self.multiset else values

    def _compile(self):
        fns = [i._compile() for i in self.items]
        if self.multiset:
            return lambda tup, env=None: Multiset(f(tup, env) for f in fns)
        return lambda tup, env=None: [f(tup, env) for f in fns]

    def _collect_columns(self, out):
        for i in self.items:
            i._collect_columns(out)

    def __repr__(self):
        braces = "{{}}" if self.multiset else "[]"
        return f"collection{braces}({len(self.items)})"


class Comprehension(RuntimeExpr):
    """An inline subquery over a collection-valued source:
    ``[body for var in collection if filter]``.

    Subqueries whose FROM sources are *expressions* (``FROM u.employment
    AS e WHERE ... SELECT VALUE ...``) compile to this; subqueries over
    datasets are decorrelated into joins by the translator.  Multiple
    sources nest (the body of the outer comprehension is the inner one,
    flattened by the compiler)."""

    __slots__ = ("var", "collection", "filter", "body")

    def __init__(self, var: str, collection: RuntimeExpr,
                 filter: RuntimeExpr | None, body: RuntimeExpr):
        self.var = var
        self.collection = collection
        self.filter = filter
        self.body = body

    def evaluate(self, tup, env=None):
        coll = self.collection.evaluate(tup, env)
        if coll is MISSING:
            return MISSING
        if coll is None:
            return None
        if not isinstance(coll, (list, Multiset)):
            coll = [coll]  # FROM over a non-collection iterates once
        inner = dict(env) if env else {}
        out = []
        for item in coll:
            inner[self.var] = item
            if self.filter is not None and \
                    self.filter.evaluate(tup, inner) is not True:
                continue
            value = self.body.evaluate(tup, inner)
            if isinstance(self.body, Comprehension):
                out.extend(value)  # nested sources flatten
            else:
                out.append(value)
        return out

    def _compile(self):
        coll_f = self.collection._compile()
        filter_f = None if self.filter is None else self.filter._compile()
        body_f = self.body._compile()
        var = self.var
        nested = isinstance(self.body, Comprehension)

        def comprehend(tup, env=None):
            coll = coll_f(tup, env)
            if coll is MISSING:
                return MISSING
            if coll is None:
                return None
            if not isinstance(coll, (list, Multiset)):
                coll = [coll]
            inner = dict(env) if env else {}
            out = []
            for item in coll:
                inner[var] = item
                if filter_f is not None and \
                        filter_f(tup, inner) is not True:
                    continue
                value = body_f(tup, inner)
                if nested:
                    out.extend(value)
                else:
                    out.append(value)
            return out

        return comprehend

    def _collect_columns(self, out):
        self.collection._collect_columns(out)
        if self.filter is not None:
            self.filter._collect_columns(out)
        self.body._collect_columns(out)

    def __repr__(self):
        return (f"[{self.body!r} for %{self.var} in {self.collection!r}"
                + (f" if {self.filter!r}" if self.filter else "") + "]")


class InlineQuery(RuntimeExpr):
    """A correlated subquery over expression-valued sources, evaluated
    per tuple (e.g. ``(FROM u.employment AS e WHERE ... SELECT VALUE e)``).

    Subqueries over *datasets* are decorrelated into joins by the
    translator; only collection-valued sources reach this node.  The plan
    is a closure produced by the compiler; it receives (tup, env) and
    returns a list."""

    __slots__ = ("closure",)

    def __init__(self, closure):
        self.closure = closure

    def evaluate(self, tup, env=None):
        return self.closure(tup, env)

    def _compile(self):
        return self.closure

    def __repr__(self):
        return "inline-query"


def evaluate_predicate(expr: RuntimeExpr, tup, env=None) -> bool:
    """WHERE/HAVING/join-condition semantics: only True passes."""
    return expr.evaluate(tup, env) is True


# --- the compiler -------------------------------------------------------------

def _subexprs(expr: RuntimeExpr):
    if isinstance(expr, FunctionCall):
        return expr.args
    if isinstance(expr, Quantified):
        return (expr.collection, expr.predicate)
    if isinstance(expr, CaseExpr):
        out = [e for pair in expr.whens for e in pair]
        out.append(expr.default)
        return out
    if isinstance(expr, ObjectConstructor):
        return [e for pair in expr.pairs for e in pair]
    if isinstance(expr, CollectionConstructor):
        return expr.items
    if isinstance(expr, Comprehension):
        out = [expr.collection, expr.body]
        if expr.filter is not None:
            out.append(expr.filter)
        return out
    return ()


def expr_size(expr: RuntimeExpr) -> int:
    """IR node count (the ``expr.compile_nodes`` metric's unit)."""
    return 1 + sum(expr_size(child) for child in _subexprs(expr))


def compile_expr(expr: RuntimeExpr):
    """Compile ``expr`` into a closure ``(tup, env=None) -> ADM value``.

    The closure is byte-identical to ``expr.evaluate`` on every input —
    same values, same unknown propagation (all arguments evaluated, then
    MISSING beats null), same errors.  Compilation happens once per job
    (``OperatorDescriptor.prepare``), so its cost is amortized over every
    tuple of every partition; metrics: ``expr.compile_exprs`` counts
    top-level compilations, ``expr.compile_nodes`` the IR nodes visited.
    """
    from repro.observability.metrics import get_registry

    registry = get_registry()
    registry.counter("expr.compile_exprs").inc()
    registry.counter("expr.compile_nodes").inc(expr_size(expr))
    return expr._compile()


def compile_predicate(expr: RuntimeExpr):
    """Compile a WHERE/HAVING/join condition into ``(tup, env=None) ->
    bool`` with :func:`evaluate_predicate` semantics (only True passes)."""
    fn = compile_expr(expr)
    return lambda tup, env=None: fn(tup, env) is True


def compile_expr_batch(expr: RuntimeExpr, fn=None):
    """Compile ``expr`` into a frame-level evaluator ``(tuples) ->
    [values]``, one value per tuple in order — what the batched
    aggregate runtime feeds to ``AggregateState.step_many``.

    The common aggregate-argument shapes skip per-tuple closure dispatch
    entirely: a ``ColumnRef`` becomes a plain column extraction and a
    ``Const`` a repeated value; everything else runs the per-tuple
    closure inside one comprehension (pass the already-compiled closure
    as ``fn`` to avoid compiling — and counting — the expression
    twice).  Values are identical to evaluating per tuple (the closures
    are deterministic and side-effect free by contract).
    """
    if isinstance(expr, ColumnRef):
        index = expr.index
        return lambda frame: [t[index] for t in frame]
    if isinstance(expr, Const):
        value = expr.value
        return lambda frame: [value] * len(frame)
    if fn is None:
        fn = compile_expr(expr)
    return lambda frame: [fn(t) for t in frame]
