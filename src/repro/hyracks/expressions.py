"""Runtime scalar expressions.

The Algebricks job generator compiles each logical expression into this
small IR, resolving variables to tuple field indexes.  Evaluation follows
SQL++ semantics: unknowns (MISSING/null) propagate through function calls
(see :mod:`repro.functions.registry`), field access on non-objects yields
MISSING, and quantified expressions short-circuit.

``env`` carries lambda-style bindings for variables introduced *inside* an
expression (quantified variables, inline-collection iteration); ordinary
query variables are compiled to :class:`ColumnRef` positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import MISSING, Multiset
from repro.common.errors import CompilationError
from repro.functions.registry import resolve


class RuntimeExpr:
    """Base class; ``evaluate(tup, env)`` returns an ADM value."""

    def evaluate(self, tup, env=None):
        raise NotImplementedError

    def columns(self) -> set[int]:
        """All ColumnRef indexes under this expression (projection
        pushdown and join-side analysis use this)."""
        out: set[int] = set()
        self._collect_columns(out)
        return out

    def _collect_columns(self, out: set[int]) -> None:
        pass


@dataclass(frozen=True)
class Const(RuntimeExpr):
    value: object

    def evaluate(self, tup, env=None):
        return self.value

    def __repr__(self):
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class ColumnRef(RuntimeExpr):
    index: int

    def evaluate(self, tup, env=None):
        return tup[self.index]

    def _collect_columns(self, out):
        out.add(self.index)

    def __repr__(self):
        return f"${self.index}"


@dataclass(frozen=True)
class VarRef(RuntimeExpr):
    """A lambda-bound variable (quantifier/inline-iteration binding)."""

    name: str

    def evaluate(self, tup, env=None):
        if env is None or self.name not in env:
            raise CompilationError(f"unbound variable {self.name}")
        return env[self.name]

    def __repr__(self):
        return f"VarRef({self.name})"


class FunctionCall(RuntimeExpr):
    """A call to a registered scalar function, with SQL++ unknown
    propagation applied here (pre-resolved for speed)."""

    __slots__ = ("name", "args", "_func")

    def __init__(self, name: str, args: list):
        self.name = name
        self.args = list(args)
        self._func = resolve(name)
        if not self._func.check_arity(len(self.args)):
            raise CompilationError(
                f"wrong number of arguments for {name}: {len(self.args)}"
            )

    def evaluate(self, tup, env=None):
        values = [a.evaluate(tup, env) for a in self.args]
        if not self._func.handles_unknowns:
            for v in values:
                if v is MISSING:
                    return MISSING
            for v in values:
                if v is None:
                    return None
        return self._func.impl(*values)

    def _collect_columns(self, out):
        for a in self.args:
            a._collect_columns(out)

    def __repr__(self):
        return f"{self.name}({', '.join(map(repr, self.args))})"


class Quantified(RuntimeExpr):
    """SOME/EVERY var IN collection SATISFIES predicate.

    SQL++ semantics: SOME over an empty collection is false, EVERY is true;
    a non-collection operand yields null."""

    __slots__ = ("some", "var", "collection", "predicate")

    def __init__(self, some: bool, var: str, collection: RuntimeExpr,
                 predicate: RuntimeExpr):
        self.some = some
        self.var = var
        self.collection = collection
        self.predicate = predicate

    def evaluate(self, tup, env=None):
        coll = self.collection.evaluate(tup, env)
        if coll is MISSING:
            return MISSING
        if coll is None:
            return None
        if not isinstance(coll, (list, Multiset)):
            return None
        inner = dict(env) if env else {}
        for item in coll:
            inner[self.var] = item
            result = self.predicate.evaluate(tup, inner)
            if self.some and result is True:
                return True
            if not self.some and result is not True:
                return False
        return not self.some

    def _collect_columns(self, out):
        self.collection._collect_columns(out)
        self.predicate._collect_columns(out)

    def __repr__(self):
        kw = "some" if self.some else "every"
        return (f"{kw} {self.var} in {self.collection!r} "
                f"satisfies {self.predicate!r}")


class CaseExpr(RuntimeExpr):
    """Searched CASE: WHEN cond THEN result ... ELSE default END."""

    __slots__ = ("whens", "default")

    def __init__(self, whens: list, default: RuntimeExpr):
        self.whens = list(whens)      # [(cond_expr, result_expr)]
        self.default = default

    def evaluate(self, tup, env=None):
        for cond, result in self.whens:
            if cond.evaluate(tup, env) is True:
                return result.evaluate(tup, env)
        return self.default.evaluate(tup, env)

    def _collect_columns(self, out):
        for cond, result in self.whens:
            cond._collect_columns(out)
            result._collect_columns(out)
        self.default._collect_columns(out)

    def __repr__(self):
        return f"case({len(self.whens)} whens)"


class ObjectConstructor(RuntimeExpr):
    """{"name": expr, ...} — a MISSING value drops its field, per SQL++."""

    __slots__ = ("pairs",)

    def __init__(self, pairs: list):
        self.pairs = list(pairs)      # [(name_expr, value_expr)]

    def evaluate(self, tup, env=None):
        out = {}
        for name_expr, value_expr in self.pairs:
            name = name_expr.evaluate(tup, env)
            if name is MISSING or name is None:
                continue
            value = value_expr.evaluate(tup, env)
            if value is MISSING:
                continue
            out[name] = value
        return out

    def _collect_columns(self, out):
        for name_expr, value_expr in self.pairs:
            name_expr._collect_columns(out)
            value_expr._collect_columns(out)

    def __repr__(self):
        return f"object({len(self.pairs)} fields)"


class CollectionConstructor(RuntimeExpr):
    """[...] or {{...}}."""

    __slots__ = ("items", "multiset")

    def __init__(self, items: list, multiset: bool = False):
        self.items = list(items)
        self.multiset = multiset

    def evaluate(self, tup, env=None):
        values = [i.evaluate(tup, env) for i in self.items]
        return Multiset(values) if self.multiset else values

    def _collect_columns(self, out):
        for i in self.items:
            i._collect_columns(out)

    def __repr__(self):
        braces = "{{}}" if self.multiset else "[]"
        return f"collection{braces}({len(self.items)})"


class Comprehension(RuntimeExpr):
    """An inline subquery over a collection-valued source:
    ``[body for var in collection if filter]``.

    Subqueries whose FROM sources are *expressions* (``FROM u.employment
    AS e WHERE ... SELECT VALUE ...``) compile to this; subqueries over
    datasets are decorrelated into joins by the translator.  Multiple
    sources nest (the body of the outer comprehension is the inner one,
    flattened by the compiler)."""

    __slots__ = ("var", "collection", "filter", "body")

    def __init__(self, var: str, collection: RuntimeExpr,
                 filter: RuntimeExpr | None, body: RuntimeExpr):
        self.var = var
        self.collection = collection
        self.filter = filter
        self.body = body

    def evaluate(self, tup, env=None):
        coll = self.collection.evaluate(tup, env)
        if coll is MISSING:
            return MISSING
        if coll is None:
            return None
        if not isinstance(coll, (list, Multiset)):
            coll = [coll]  # FROM over a non-collection iterates once
        inner = dict(env) if env else {}
        out = []
        for item in coll:
            inner[self.var] = item
            if self.filter is not None and \
                    self.filter.evaluate(tup, inner) is not True:
                continue
            value = self.body.evaluate(tup, inner)
            if isinstance(self.body, Comprehension):
                out.extend(value)  # nested sources flatten
            else:
                out.append(value)
        return out

    def _collect_columns(self, out):
        self.collection._collect_columns(out)
        if self.filter is not None:
            self.filter._collect_columns(out)
        self.body._collect_columns(out)

    def __repr__(self):
        return (f"[{self.body!r} for %{self.var} in {self.collection!r}"
                + (f" if {self.filter!r}" if self.filter else "") + "]")


class InlineQuery(RuntimeExpr):
    """A correlated subquery over expression-valued sources, evaluated
    per tuple (e.g. ``(FROM u.employment AS e WHERE ... SELECT VALUE e)``).

    Subqueries over *datasets* are decorrelated into joins by the
    translator; only collection-valued sources reach this node.  The plan
    is a closure produced by the compiler; it receives (tup, env) and
    returns a list."""

    __slots__ = ("closure",)

    def __init__(self, closure):
        self.closure = closure

    def evaluate(self, tup, env=None):
        return self.closure(tup, env)

    def __repr__(self):
        return "inline-query"


def evaluate_predicate(expr: RuntimeExpr, tup, env=None) -> bool:
    """WHERE/HAVING/join-condition semantics: only True passes."""
    return expr.evaluate(tup, env) is True
