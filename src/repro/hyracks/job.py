"""Hyracks job specifications.

"Hyracks jobs resulting from SQL++ query requests" (paper Fig. 1) are DAGs
of operator descriptors wired by connector descriptors.  An operator runs
in N partitions; a connector describes how a producer's partitioned output
is routed to a consumer's input partitions (one-to-one, hash partition,
broadcast, sorted merge).  The cluster controller executes the DAG in
dependency order (see :mod:`repro.hyracks.cluster`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CompilationError


class OperatorDescriptor:
    """Base class for runtime operators.

    ``run(ctx, partition, inputs)`` consumes one list of tuples per input
    port (already routed to this partition) and returns this partition's
    output tuples.  ``num_inputs`` declares the port count.
    """

    num_inputs = 1
    #: None = run at full cluster width; 1 = single (global) partition
    partition_count: int | None = None
    name = "op"

    def run(self, ctx, partition: int, inputs: list) -> list:
        raise NotImplementedError

    def __repr__(self):
        return self.name


class ConnectorDescriptor:
    """Routes producer partitions to consumer partitions."""

    name = "connector"

    def route(self, producer_outputs: list, num_consumers: int,
              ctx) -> list:
        """``producer_outputs``: list over producer partitions of tuple
        lists.  Returns a list over consumer partitions of tuple lists."""
        raise NotImplementedError

    def __repr__(self):
        return self.name


@dataclass
class _Edge:
    connector: ConnectorDescriptor
    producer: int
    consumer: int
    port: int


@dataclass
class JobSpecification:
    """A dataflow DAG: operators + connectors."""

    operators: list = field(default_factory=list)
    edges: list = field(default_factory=list)

    def add_operator(self, op: OperatorDescriptor) -> int:
        self.operators.append(op)
        return len(self.operators) - 1

    def connect(self, connector: ConnectorDescriptor, producer: int,
                consumer: int, port: int = 0) -> None:
        for op_id in (producer, consumer):
            if not 0 <= op_id < len(self.operators):
                raise CompilationError(f"unknown operator id {op_id}")
        self.edges.append(_Edge(connector, producer, consumer, port))

    def inputs_of(self, op_id: int) -> list:
        """Edges feeding op_id, ordered by port."""
        edges = [e for e in self.edges if e.consumer == op_id]
        edges.sort(key=lambda e: e.port)
        return edges

    def validate(self) -> None:
        """DAG sanity: ports match arity, no cycles, single-rooted sinks."""
        for op_id, op in enumerate(self.operators):
            edges = self.inputs_of(op_id)
            ports = [e.port for e in edges]
            if ports != list(range(op.num_inputs)):
                raise CompilationError(
                    f"operator {op_id} ({op!r}) expects "
                    f"{op.num_inputs} input(s), got ports {ports}"
                )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list[int]:
        indegree = {i: 0 for i in range(len(self.operators))}
        for e in self.edges:
            indegree[e.consumer] += 1
        ready = [i for i, d in indegree.items() if d == 0]
        order = []
        while ready:
            op_id = ready.pop()
            order.append(op_id)
            for e in self.edges:
                if e.producer == op_id:
                    indegree[e.consumer] -= 1
                    if indegree[e.consumer] == 0:
                        ready.append(e.consumer)
        if len(order) != len(self.operators):
            raise CompilationError("job graph has a cycle")
        return order

    def sinks(self) -> list[int]:
        producers = {e.producer for e in self.edges}
        return [i for i in range(len(self.operators)) if i not in producers]

    def describe(self) -> str:
        """Human-readable job summary (EXPLAIN output uses this)."""
        lines = []
        for op_id, op in enumerate(self.operators):
            feeds = [
                f"{e.producer}--{e.connector!r}-->"
                for e in self.inputs_of(op_id)
            ]
            prefix = " ".join(feeds)
            lines.append(f"  [{op_id}] {prefix} {op!r}".rstrip())
        return "\n".join(lines)
