"""Hyracks job specifications.

"Hyracks jobs resulting from SQL++ query requests" (paper Fig. 1) are DAGs
of operator descriptors wired by connector descriptors.  An operator runs
in N partitions; a connector describes how a producer's partitioned output
is routed to a consumer's input partitions (one-to-one, hash partition,
broadcast, sorted merge).  The executor (:mod:`repro.hyracks.executor`)
splits the DAG into stages at pipeline breakers and streams frames through
fused chains of streaming operators; :mod:`repro.hyracks.cluster` drives
it in dependency order.

Two execution protocols coexist on :class:`OperatorDescriptor`:

* ``run(ctx, partition, inputs)`` — the original list-in/list-out form
  every operator implements; pipeline breakers only ever run this way.
* ``start(ctx, partition)``/``run_iter(...)`` — the push/pull streaming
  forms.  ``streaming = True`` operators return an :class:`OperatorTask`
  from ``start`` that consumes input one frame at a time; sources may
  override ``run_iter`` to *produce* output incrementally.  Streaming
  implementations must issue the exact same cost charges, in the same
  order, as ``run`` would (defer batch charges to ``finish``), so the
  simulated clock is byte-identical whichever protocol executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CompilationError


class OperatorTask:
    """Push-based execution state of one (operator, partition) task.

    The executor feeds routed input through ``push`` one frame at a time
    and calls ``finish`` exactly once at end-of-stream; both return output
    tuples (possibly empty).  Tasks must not perform device I/O — a
    streaming chain runs inside its head operator's I/O accounting window.
    """

    def __init__(self, op: "OperatorDescriptor", ctx, partition: int):
        self.op = op
        self.ctx = ctx
        self.partition = partition

    def push(self, frame: list) -> list:
        raise NotImplementedError

    def finish(self) -> list:
        return []


class BufferedOperatorTask(OperatorTask):
    """Compatibility task: buffers every frame and calls ``run`` at
    end-of-stream.  Pipeline breakers use this when they end up in a
    push-based position (they normally head their own stage instead)."""

    def __init__(self, op, ctx, partition):
        super().__init__(op, ctx, partition)
        self._buffer: list = []

    def push(self, frame):
        self._buffer.extend(frame)
        return []

    def finish(self):
        return self.op.run(self.ctx, self.partition, [self._buffer])


class OperatorDescriptor:
    """Base class for runtime operators.

    ``run(ctx, partition, inputs)`` consumes one list of tuples per input
    port (already routed to this partition) and returns this partition's
    output tuples.  ``num_inputs`` declares the port count.
    """

    num_inputs = 1
    #: None = run at full cluster width; 1 = single (global) partition
    partition_count: int | None = None
    name = "op"
    #: True when the operator can consume its input one frame at a time
    #: without changing results or cost accounting.  Pipeline breakers —
    #: sort, group-by, join (its build side must be complete before the
    #: probe), the result writer, anything that buffers or reorders —
    #: keep the default False and act as stage boundaries in the
    #: executor's stage decomposition.
    streaming = False

    def run(self, ctx, partition: int, inputs: list) -> list:
        raise NotImplementedError

    def prepare(self, config) -> None:
        """Per-job compilation hook, called once before execution (when
        ``config.executor.compile_expressions`` is on).  Operators that
        carry scalar expressions override this to compile them into
        closures via :func:`repro.hyracks.expressions.compile_expr`; the
        compiled form must be byte-identical to interpretation.  The
        default is a no-op, so expression-free operators (and operators
        on jobs that skip preparation) always interpret."""

    def start(self, ctx, partition: int) -> OperatorTask:
        """Begin push-based execution; streaming operators override."""
        return BufferedOperatorTask(self, ctx, partition)

    def run_iter(self, ctx, partition: int, inputs: list):
        """Generator form of ``run`` for stage heads.  Sources that can
        emit incrementally (scans) override this with a true generator so
        a pipelined stage never materializes their full output."""
        yield from self.run(ctx, partition, inputs)

    def __repr__(self):
        return self.name


class ConnectorDescriptor:
    """Routes producer partitions to consumer partitions."""

    name = "connector"

    def route(self, producer_outputs: list, num_consumers: int,
              ctx) -> list:
        """``producer_outputs``: list over producer partitions of tuple
        lists.  Returns a list over consumer partitions of tuple lists."""
        raise NotImplementedError

    def __repr__(self):
        return self.name


@dataclass
class _Edge:
    connector: ConnectorDescriptor
    producer: int
    consumer: int
    port: int


@dataclass
class JobSpecification:
    """A dataflow DAG: operators + connectors."""

    operators: list = field(default_factory=list)
    edges: list = field(default_factory=list)

    def add_operator(self, op: OperatorDescriptor) -> int:
        self.operators.append(op)
        return len(self.operators) - 1

    def connect(self, connector: ConnectorDescriptor, producer: int,
                consumer: int, port: int = 0) -> None:
        for op_id in (producer, consumer):
            if not 0 <= op_id < len(self.operators):
                raise CompilationError(f"unknown operator id {op_id}")
        self.edges.append(_Edge(connector, producer, consumer, port))

    def inputs_of(self, op_id: int) -> list:
        """Edges feeding op_id, ordered by port."""
        edges = [e for e in self.edges if e.consumer == op_id]
        edges.sort(key=lambda e: e.port)
        return edges

    def validate(self) -> None:
        """DAG sanity: ports match arity, no cycles, single-rooted sinks."""
        for op_id, op in enumerate(self.operators):
            edges = self.inputs_of(op_id)
            ports = [e.port for e in edges]
            if ports != list(range(op.num_inputs)):
                raise CompilationError(
                    f"operator {op_id} ({op!r}) expects "
                    f"{op.num_inputs} input(s), got ports {ports}"
                )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list[int]:
        indegree = {i: 0 for i in range(len(self.operators))}
        for e in self.edges:
            indegree[e.consumer] += 1
        ready = [i for i, d in indegree.items() if d == 0]
        order = []
        while ready:
            op_id = ready.pop()
            order.append(op_id)
            for e in self.edges:
                if e.producer == op_id:
                    indegree[e.consumer] -= 1
                    if indegree[e.consumer] == 0:
                        ready.append(e.consumer)
        if len(order) != len(self.operators):
            raise CompilationError("job graph has a cycle")
        return order

    def sinks(self) -> list[int]:
        producers = {e.producer for e in self.edges}
        return [i for i in range(len(self.operators)) if i not in producers]

    def describe(self) -> str:
        """Human-readable job summary (EXPLAIN output uses this)."""
        lines = []
        for op_id, op in enumerate(self.operators):
            feeds = [
                f"{e.producer}--{e.connector!r}-->"
                for e in self.inputs_of(op_id)
            ]
            prefix = " ".join(feeds)
            lines.append(f"  [{op_id}] {prefix} {op!r}".rstrip())
        return "\n".join(lines)


def prepare_job(job: JobSpecification, config) -> None:
    """Compile every operator's expressions for one job execution.

    Called by the cluster controller after ``validate()`` and before the
    first attempt, gated by ``config.executor.compile_expressions`` —
    compilation happens once per job, never per tuple, per partition, or
    per retry (``prepare`` implementations are idempotent, so a re-run
    job simply keeps its closures)."""
    from repro.observability.metrics import get_registry

    for op in job.operators:
        op.prepare(config)
    get_registry().counter("expr.compile_jobs").inc()
