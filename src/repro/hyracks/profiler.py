"""Job profiling and the simulated-time clock.

DESIGN.md (Substitutions): the in-process cluster reproduces scale-out
*shape* by accounting simulated time instead of running real threads.
Charges accumulate per (operator, partition); an operator's elapsed time is
the max over its partitions (they'd run concurrently on a real cluster),
and the job's elapsed time sums operators along the dependency chain (a
conservative no-pipelining model, applied identically to every
configuration being compared).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import CostModel


@dataclass
class PartitionCost:
    cpu_us: float = 0.0
    io_us: float = 0.0
    network_us: float = 0.0
    tuples_in: int = 0
    tuples_out: int = 0

    @property
    def total_us(self) -> float:
        return self.cpu_us + self.io_us + self.network_us

    def to_dict(self) -> dict:
        return {
            "cpu_us": self.cpu_us,
            "io_us": self.io_us,
            "network_us": self.network_us,
            "total_us": self.total_us,
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
        }


@dataclass
class OperatorProfile:
    name: str
    partitions: dict = field(default_factory=dict)   # partition -> cost
    #: optimizer estimate for this operator's output cardinality (None
    #: when the cost pass didn't run); paired with ``tuples_out`` this
    #: is the estimated-vs-actual readout in EXPLAIN/traces
    estimated_cardinality: float | None = None

    def cost(self, partition: int) -> PartitionCost:
        return self.partitions.setdefault(partition, PartitionCost())

    @property
    def elapsed_us(self) -> float:
        """Parallel elapsed time: the slowest partition."""
        return max((c.total_us for c in self.partitions.values()),
                   default=0.0)

    @property
    def total_tuples_out(self) -> int:
        return sum(c.tuples_out for c in self.partitions.values())

    def to_dict(self) -> dict:
        """Structured form (one entry per partition) for query traces."""
        out = {
            "name": self.name,
            "elapsed_us": self.elapsed_us,
            "tuples_out": self.total_tuples_out,
            "partitions": {
                p: cost.to_dict()
                for p, cost in sorted(self.partitions.items())
            },
        }
        if self.estimated_cardinality is not None:
            out["estimated_cardinality"] = self.estimated_cardinality
            out["actual_cardinality"] = self.total_tuples_out
        return out


@dataclass
class JobProfile:
    """Everything a benchmark reports about one job execution."""

    cost_model: CostModel
    operators: list = field(default_factory=list)
    #: One dict per executed stage (index, ops, width, pipelined,
    #: wall_seconds) — filled in by the executor's stage scheduler.
    stages: list = field(default_factory=list)
    connector_network_tuples: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    simulated_us: float = 0.0
    wall_seconds: float = 0.0

    def new_operator(self, name: str,
                     estimated_cardinality: float | None = None
                     ) -> OperatorProfile:
        profile = OperatorProfile(
            name, estimated_cardinality=estimated_cardinality)
        self.operators.append(profile)
        return profile

    @property
    def simulated_ms(self) -> float:
        return self.simulated_us / 1000.0

    def to_dict(self) -> dict:
        return {
            "simulated_us": self.simulated_us,
            "wall_seconds": self.wall_seconds,
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "connector_network_tuples": self.connector_network_tuples,
            "operators": [op.to_dict() for op in self.operators],
            "stages": [dict(s) for s in self.stages],
        }

    def describe(self) -> str:
        lines = [
            f"job: simulated {self.simulated_ms:.2f} ms, "
            f"{self.physical_reads} reads, {self.physical_writes} writes, "
            f"{self.connector_network_tuples} net tuples"
        ]
        for op in self.operators:
            lines.append(
                f"  {op.name:<28} elapsed {op.elapsed_us / 1000:8.2f} ms  "
                f"out {op.total_tuples_out}"
            )
        return "\n".join(lines)
