"""Hyracks: the partitioned-parallel dataflow runtime (paper feature 4)."""

from repro.hyracks.cluster import (
    ClusterController,
    DatasetInfo,
    JobResult,
    NodeController,
)
from repro.hyracks.connectors import (
    BroadcastConnector,
    HashPartitionConnector,
    MergeConnector,
    OneToOneConnector,
    RangePartitionConnector,
)
from repro.hyracks.executor import JobExecutor, Stage, build_stages
from repro.hyracks.expressions import (
    CaseExpr,
    CollectionConstructor,
    ColumnRef,
    Const,
    FunctionCall,
    InlineQuery,
    ObjectConstructor,
    Quantified,
    RuntimeExpr,
    VarRef,
    evaluate_predicate,
)
from repro.hyracks.job import (
    ConnectorDescriptor,
    JobSpecification,
    OperatorDescriptor,
)
from repro.hyracks.memory import MemoryGovernor, MemoryGrant
from repro.hyracks.profiler import JobProfile, OperatorProfile, PartitionCost

__all__ = [
    "BroadcastConnector",
    "CaseExpr",
    "ClusterController",
    "CollectionConstructor",
    "ColumnRef",
    "ConnectorDescriptor",
    "Const",
    "DatasetInfo",
    "FunctionCall",
    "HashPartitionConnector",
    "InlineQuery",
    "JobExecutor",
    "JobProfile",
    "JobResult",
    "JobSpecification",
    "MemoryGovernor",
    "MemoryGrant",
    "MergeConnector",
    "NodeController",
    "ObjectConstructor",
    "OneToOneConnector",
    "OperatorDescriptor",
    "OperatorProfile",
    "PartitionCost",
    "Quantified",
    "RangePartitionConnector",
    "ResultWriterOp",
    "RuntimeExpr",
    "Stage",
    "VarRef",
    "build_stages",
    "evaluate_predicate",
]

from repro.hyracks.operators.result import ResultWriterOp  # noqa: E402
