"""Run files: how memory-intensive operators spill.

External sort, hybrid hash join, and hash group-by write intermediate
tuples to run files when their frame budget is exceeded (paper Fig. 2's
"working memory" box; experiment E4 measures exactly this spilling).  A run
file serializes tuples into real pages written sequentially through the
node's file manager, so spill I/O shows up in the device counters like any
other I/O.

Lifecycle contract (enforced by ``tests/hyracks/test_runfile_lifecycle.py``
and the ``temp-pairing`` lint rule): every temp file a writer creates is
owned by exactly one :class:`RunFileReader` after :meth:`RunFileWriter.
finish`, and that reader deletes it — either automatically when a full
iteration exhausts it, or via :meth:`RunFileReader.close`, which consumers
must call from a ``finally`` so an early-exiting iteration (a LIMIT that
abandons a merge, an injected fault mid-pass) can never leak the file.
"""

from __future__ import annotations

import struct

from repro.adm.serializer import deserialize_tuple, serialize_tuple
from repro.common.errors import StorageError

#: Per-entry framing overhead: a big-endian uint32 length prefix; a page
#: additionally ends with one zero length word as terminator, so the
#: largest admissible entry is ``page_size - 8`` bytes of tuple data plus
#: its own 4-byte prefix.
_LEN = 4


class RunFileWriter:
    """Packs tuples into pages and writes them sequentially.

    Page layout: ``[len][entry]...[len][entry][0x00000000][zero pad]`` —
    entries are length-prefixed serialized tuples, a zero length word
    terminates the page, and the remainder is zero padding.
    """

    def __init__(self, ctx, label: str = "run"):
        self.ctx = ctx
        # ownership transfers to the reader finish() returns, which
        # releases the file on exhaustion/close
        self.handle = ctx.make_temp_file(label)  # lint: allow-temp-pairing
        self.page_size = ctx.node.fm.page_size
        self._buffer = bytearray()
        self._page_no = 0
        self.tuples_written = 0

    def write(self, tup) -> None:
        data = serialize_tuple(tup)
        entry = struct.pack(">I", len(data)) + data
        if len(entry) + _LEN > self.page_size:
            raise StorageError(
                f"tuple of {len(entry)} bytes exceeds run-file page"
            )
        if len(self._buffer) + len(entry) + _LEN > self.page_size:
            self._flush_page()
        self._buffer.extend(entry)
        self.tuples_written += 1

    def _flush_page(self) -> None:
        page = self._buffer + b"\x00\x00\x00\x00"
        page = page.ljust(self.page_size, b"\x00")
        self.ctx.node.fm.write_page(self.handle, self._page_no, page,
                                    sequential=True)
        self.ctx.charge_io(0, 0, 0, 1)
        self._page_no += 1
        self._buffer = bytearray()

    def finish(self) -> "RunFileReader":
        if self._buffer or self._page_no == 0:
            self._flush_page()
        return RunFileReader(self.ctx, self.handle, self._page_no,
                             self.tuples_written)


class RunFileReader:
    """Sequentially reads a run file back; deletes it when exhausted.

    A completed iteration releases the temp file automatically; partial
    consumers must :meth:`close` (idempotent) from a ``finally``.
    Iterating after release raises :class:`StorageError` instead of
    touching a freed handle.
    """

    def __init__(self, ctx, handle, num_pages: int, num_tuples: int):
        self.ctx = ctx
        self.handle = handle
        self.num_pages = num_pages
        self.num_tuples = num_tuples
        self.released = False

    def __iter__(self):
        if self.released:
            raise StorageError(
                f"run file {self.handle.rel_path} iterated after release"
            )
        for page_no in range(self.num_pages):
            if self.released:
                raise StorageError(
                    f"run file {self.handle.rel_path} released mid-read"
                )
            data = self.ctx.node.fm.read_page(self.handle, page_no,
                                              sequential=True)
            self.ctx.charge_io(0, 0, 1, 0)
            pos = 0
            while pos + _LEN <= len(data):
                (length,) = struct.unpack_from(">I", data, pos)
                if length == 0:
                    break
                pos += _LEN
                yield deserialize_tuple(bytes(data[pos:pos + length]))
                pos += length
        self.close()    # exhausted: delete, as the class contract says

    def close(self) -> None:
        if self.released:
            return
        self.released = True
        self.ctx.release_temp_file(self.handle)
