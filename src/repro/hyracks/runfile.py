"""Run files: how memory-intensive operators spill.

External sort, hybrid hash join, and hash group-by write intermediate
tuples to run files when their frame budget is exceeded (paper Fig. 2's
"working memory" box; experiment E4 measures exactly this spilling).  A run
file serializes tuples into real pages written sequentially through the
node's file manager, so spill I/O shows up in the device counters like any
other I/O.
"""

from __future__ import annotations

import struct

from repro.adm.serializer import deserialize_tuple, serialize_tuple
from repro.common.errors import StorageError


class RunFileWriter:
    """Packs tuples into pages and writes them sequentially."""

    def __init__(self, ctx, label: str = "run"):
        self.ctx = ctx
        self.handle = ctx.make_temp_file(label)
        self.page_size = ctx.node.fm.page_size
        self._buffer = bytearray()
        self._page_no = 0
        self.tuples_written = 0

    def write(self, tup) -> None:
        data = serialize_tuple(tup)
        entry = struct.pack(">I", len(data)) + data
        if len(entry) + 4 > self.page_size:
            raise StorageError(
                f"tuple of {len(entry)} bytes exceeds run-file page"
            )
        if len(self._buffer) + len(entry) + 4 > self.page_size:
            self._flush_page()
        self._buffer.extend(entry)
        self.tuples_written += 1

    def _flush_page(self) -> None:
        page = bytearray(self.page_size)
        struct.pack_into(">I", page, 0, 0xFFFFFFFF)  # placeholder
        # layout: [data...][last 4 bytes unused]; terminate with zero length
        page = self._buffer + b"\x00\x00\x00\x00"
        page = page.ljust(self.page_size, b"\x00")
        self.ctx.node.fm.write_page(self.handle, self._page_no, page,
                                    sequential=True)
        self.ctx.charge_io(0, 0, 0, 1)
        self._page_no += 1
        self._buffer = bytearray()

    def finish(self) -> "RunFileReader":
        if self._buffer or self._page_no == 0:
            self._flush_page()
        return RunFileReader(self.ctx, self.handle, self._page_no,
                             self.tuples_written)


class RunFileReader:
    """Sequentially reads a run file back; deletes it when exhausted."""

    def __init__(self, ctx, handle, num_pages: int, num_tuples: int):
        self.ctx = ctx
        self.handle = handle
        self.num_pages = num_pages
        self.num_tuples = num_tuples

    def __iter__(self):
        for page_no in range(self.num_pages):
            data = self.ctx.node.fm.read_page(self.handle, page_no,
                                              sequential=True)
            self.ctx.charge_io(0, 0, 1, 0)
            pos = 0
            while pos + 4 <= len(data):
                (length,) = struct.unpack_from(">I", data, pos)
                if length == 0:
                    break
                pos += 4
                yield deserialize_tuple(bytes(data[pos:pos + length]))
                pos += length

    def close(self) -> None:
        self.ctx.release_temp_file(self.handle)
