"""Per-job key-bytes/hash cache.

Every layer that keys tuples — hash-partitioning connectors, hash-join
build/probe, group-by, distinct — needs the same derived quantity: the
canonical bytes (and FNV hash) of a tuple's key columns.  Before this
cache each layer recomputed them, so a tuple flowing through
``hash-connector -> join probe`` paid for canonicalization twice (and a
grouped tuple three times).

:class:`KeyCache` memoizes ``(tuple identity, key columns) -> canonical
bytes`` for the lifetime of one job execution.  Identity is ``id(tup)``
with a strong reference kept to the tuple, so ids cannot be recycled
while an entry lives.  The executor creates one cache per job run and
hands it to connector routing (coordinator thread) and operator tasks
(node workers); all mutation is single dict/list ops, safe under the GIL.

The cache changes nothing observable except wall-clock time: simulated
``charge_hash`` costs are charged by the *logical* operation count at
each layer, exactly as before, so the simulated clock is identical with
the cache hot or cold.  Hit/miss totals surface as the
``hyracks.batch.key_cache_hits`` / ``hyracks.batch.key_cache_misses``
counters when the executor flushes them after the run.
"""

from __future__ import annotations

from repro.adm.values import canonical_bytes, fnv1a_bytes


def plain_key_bytes(tup, cols) -> bytes:
    """Canonical bytes of ``tup``'s key columns (``cols=None`` keys the
    whole tuple) — the uncached reference computation.  Uses the composite
    (field-sequence) form, so it agrees with ``hash_value`` over the same
    key tuple and with primary-key routing in the cluster."""
    if cols is None:
        return canonical_bytes(tup)
    return canonical_bytes(tuple(tup[i] for i in cols))


def plain_key_bytes_many(tuples, cols) -> list:
    """Batch :func:`plain_key_bytes` over a frame, one bytes per tuple."""
    if cols is None:
        return [canonical_bytes(t) for t in tuples]
    return [canonical_bytes(tuple(t[i] for i in cols)) for t in tuples]


class KeyCache:
    """Job-lifetime memo of key bytes and key hashes per (tuple, columns).

    Bounded: past ``max_entries`` the cache computes without storing, so a
    pathological job degrades to the uncached behavior instead of holding
    every intermediate tuple alive.
    """

    __slots__ = ("_entries", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int = 1 << 20):
        #: (id(tup), cols) -> [tup, key_bytes, key_hash | None]
        self._entries: dict = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def key_bytes(self, tup, cols) -> bytes:
        """Cached :func:`plain_key_bytes`.  ``cols`` must be hashable
        (pass a tuple of column indexes, or None for the whole tuple)."""
        ck = (id(tup), cols)
        entry = self._entries.get(ck)
        if entry is not None:
            self.hits += 1
            return entry[1]
        self.misses += 1
        kb = plain_key_bytes(tup, cols)
        if len(self._entries) < self.max_entries:
            self._entries[ck] = [tup, kb, None]
        return kb

    def key_bytes_many(self, tuples, cols) -> list:
        """Batch :meth:`key_bytes` over a whole frame in one call (the
        batched group-by/distinct entry point): one dict probe per
        tuple, misses computed and stored under the same bounded-size
        rule, hit/miss accounting identical to per-tuple calls."""
        entries = self._entries
        max_entries = self.max_entries
        out = []
        hits = 0
        for tup in tuples:
            ck = (id(tup), cols)
            entry = entries.get(ck)
            if entry is not None:
                hits += 1
                out.append(entry[1])
                continue
            kb = plain_key_bytes(tup, cols)
            if len(entries) < max_entries:
                entries[ck] = [tup, kb, None]
            out.append(kb)
        self.hits += hits
        self.misses += len(tuples) - hits
        return out

    def key_hash(self, tup, cols) -> int:
        """FNV-1a of :meth:`key_bytes` — equal to ``hash_value`` over the
        key tuple, so connector routing agrees with primary-key routing
        (``ClusterController.partition_of_key``)."""
        ck = (id(tup), cols)
        entry = self._entries.get(ck)
        if entry is not None:
            h = entry[2]
            if h is None:
                h = fnv1a_bytes(entry[1])
                entry[2] = h
            self.hits += 1
            return h
        self.misses += 1
        kb = plain_key_bytes(tup, cols)
        h = fnv1a_bytes(kb)
        if len(self._entries) < self.max_entries:
            self._entries[ck] = [tup, kb, h]
        return h

    def flush_metrics(self, registry) -> None:
        """Fold accumulated hit/miss counts into the metrics registry (one
        locked increment per job instead of two per tuple)."""
        if self.hits:
            registry.counter("hyracks.batch.key_cache_hits").inc(self.hits)
        if self.misses:
            registry.counter("hyracks.batch.key_cache_misses").inc(
                self.misses)
        self.hits = 0
        self.misses = 0
