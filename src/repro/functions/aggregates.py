"""Aggregate functions for GROUP BY / global aggregation.

SQL-92 semantics (what SQL++'s SELECT-clause COUNT/SUM/... mean after the
implicit group rewriting): nulls and missings are skipped; an empty or
all-unknown input yields null — except COUNT, which yields 0.  ``listify``
is the special aggregate behind GROUP AS and subquery collection: it gathers
the group's items into an ordered list.

Each builtin also registers a ``step_many`` bulk path (ISSUE-7): one call
folds a whole value list, equal by construction to the sequential
left-fold of ``step`` — counts add lengths, sums left-fold ``+`` via
``reduce``, min/max take the builtin over the batch (ties keep the
earliest value, exactly as the fold does) and then fold the prior state
in.  :meth:`AggregateState.step_many` filters unknowns once per batch and
dispatches to the bulk path when the function has one.
"""

from __future__ import annotations

from functools import reduce
from operator import add

from repro.adm.comparators import sort_key
from repro.adm.values import MISSING
from repro.functions.registry import register_aggregate


def _count_init():
    return 0


def _count_step(state, value):
    return state + 1


def _count_step_many(state, values):
    return state + len(values)


register_aggregate("count", _count_init, _count_step, lambda s: s,
                   aliases=("sql_count",), step_many=_count_step_many)


def _sum_init():
    return None


def _sum_step(state, value):
    return value if state is None else state + value


def _sum_step_many(state, values):
    # reduce is the same left fold step performs: ((v0 + v1) + v2) + ...
    if state is None:
        return reduce(add, values)
    return reduce(add, values, state)


register_aggregate("sum", _sum_init, _sum_step, lambda s: s,
                   aliases=("sql_sum", "agg_sum"),
                   step_many=_sum_step_many)


def _avg_init():
    return (0, 0)


def _avg_step(state, value):
    total, n = state
    return (total + value, n + 1)


def _avg_step_many(state, values):
    total, n = state
    return (reduce(add, values, total), n + len(values))


def _avg_finish(state):
    total, n = state
    return total / n if n else None


register_aggregate("avg", _avg_init, _avg_step, _avg_finish,
                   aliases=("sql_avg", "agg_avg"),
                   step_many=_avg_step_many)


def _min_step(state, value):
    if state is None:
        return value
    return min(state, value, key=sort_key)


def _min_step_many(state, values):
    # builtin min keeps the earliest of tied values, as the fold does;
    # the prior state was seen before every batch value, so it wins ties
    best = min(values, key=sort_key)
    if state is None:
        return best
    return min(state, best, key=sort_key)


register_aggregate("min", lambda: None, _min_step, lambda s: s,
                   aliases=("sql_min", "agg_min"),
                   step_many=_min_step_many)


def _max_step(state, value):
    if state is None:
        return value
    return max(state, value, key=sort_key)


def _max_step_many(state, values):
    best = max(values, key=sort_key)
    if state is None:
        return best
    return max(state, best, key=sort_key)


register_aggregate("max", lambda: None, _max_step, lambda s: s,
                   aliases=("sql_max", "agg_max"),
                   step_many=_max_step_many)


def _listify_step(state, value):
    state.append(value)
    return state


def _listify_step_many(state, values):
    state.extend(values)
    return state


# listify keeps unknowns: a group's contents are whatever they are
register_aggregate("listify", list, _listify_step, lambda s: s,
                   skip_unknowns=False, step_many=_listify_step_many)


def _count_star_step(state, value):
    return state + 1


# count(*) counts tuples regardless of value
register_aggregate("count_star", _count_init, _count_star_step,
                   lambda s: s, skip_unknowns=False,
                   step_many=_count_step_many)


class AggregateState:
    """Runtime helper: one aggregate call's accumulating state."""

    __slots__ = ("func", "state")

    def __init__(self, func):
        self.func = func
        self.state = func.init()

    def step(self, value) -> None:
        if self.func.skip_unknowns and (value is None or value is MISSING):
            return
        self.state = self.func.step(self.state, value)

    def step_many(self, values) -> None:
        """Fold a whole batch of values in one call: filter unknowns
        once, then either the function's bulk ``step_many`` or a local
        fold of ``step`` — final state identical to stepping the batch
        one value at a time."""
        func = self.func
        if func.skip_unknowns:
            values = [v for v in values
                      if v is not None and v is not MISSING]
        if not values:
            return
        bulk = func.step_many
        if bulk is not None:
            self.state = bulk(self.state, values)
            return
        state, step = self.state, func.step
        for value in values:
            state = step(state, value)
        self.state = state

    def finish(self):
        return self.func.finish(self.state)
