"""Aggregate functions for GROUP BY / global aggregation.

SQL-92 semantics (what SQL++'s SELECT-clause COUNT/SUM/... mean after the
implicit group rewriting): nulls and missings are skipped; an empty or
all-unknown input yields null — except COUNT, which yields 0.  ``listify``
is the special aggregate behind GROUP AS and subquery collection: it gathers
the group's items into an ordered list.
"""

from __future__ import annotations

from repro.adm.comparators import sort_key
from repro.adm.values import MISSING
from repro.functions.registry import register_aggregate


def _count_init():
    return 0


def _count_step(state, value):
    return state + 1


register_aggregate("count", _count_init, _count_step, lambda s: s,
                   aliases=("sql_count",))


def _sum_init():
    return None


def _sum_step(state, value):
    return value if state is None else state + value


register_aggregate("sum", _sum_init, _sum_step, lambda s: s,
                   aliases=("sql_sum", "agg_sum"))


def _avg_init():
    return (0, 0)


def _avg_step(state, value):
    total, n = state
    return (total + value, n + 1)


def _avg_finish(state):
    total, n = state
    return total / n if n else None


register_aggregate("avg", _avg_init, _avg_step, _avg_finish,
                   aliases=("sql_avg", "agg_avg"))


def _min_step(state, value):
    if state is None:
        return value
    return min(state, value, key=sort_key)


register_aggregate("min", lambda: None, _min_step, lambda s: s,
                   aliases=("sql_min", "agg_min"))


def _max_step(state, value):
    if state is None:
        return value
    return max(state, value, key=sort_key)


register_aggregate("max", lambda: None, _max_step, lambda s: s,
                   aliases=("sql_max", "agg_max"))


def _listify_step(state, value):
    state.append(value)
    return state


# listify keeps unknowns: a group's contents are whatever they are
register_aggregate("listify", list, _listify_step, lambda s: s,
                   skip_unknowns=False)


def _count_star_step(state, value):
    return state + 1


# count(*) counts tuples regardless of value
register_aggregate("count_star", _count_init, _count_star_step,
                   lambda s: s, skip_unknowns=False)


class AggregateState:
    """Runtime helper: one aggregate call's accumulating state."""

    __slots__ = ("func", "state")

    def __init__(self, func):
        self.func = func
        self.state = func.init()

    def step(self, value) -> None:
        if self.func.skip_unknowns and (value is None or value is MISSING):
            return
        self.state = self.func.step(self.state, value)

    def finish(self):
        return self.func.finish(self.state)
