"""Temporal builtin functions.

This family got a real-world workout in the paper: the Gloria Mark
multitasking study (§V-D, [27]) "needed to time-bin their data into various
sized bins and to deal with the possibility that a given user activity
might span bins" — AsterixDB's temporal function support was extended to
cover that, and :func:`interval_bin` plus :func:`overlap_bins` are those
extensions, reproduced here and exercised by E11.
"""

from __future__ import annotations

from repro.adm.values import (
    ADate,
    ADateTime,
    ADuration,
    AInterval,
    ATime,
    TypeTag,
)
from repro.common.errors import InvalidArgumentError, TypeError_
from repro.functions.registry import register

_MILLIS_PER_DAY = 86_400_000

# The deterministic "now": benchmarks and tests need reproducible runs, so
# current_datetime() reads this session clock, which the API layer may set.
_SESSION_NOW = ADateTime.parse("2019-04-08T00:00:00")   # ICDE 2019 week


def set_session_now(dt: ADateTime) -> None:
    global _SESSION_NOW
    _SESSION_NOW = dt


@register("current_datetime", 0)
def current_datetime():
    return _SESSION_NOW


@register("current_date", 0)
def current_date():
    return _SESSION_NOW.date_part()


@register("current_time", 0)
def current_time():
    return _SESSION_NOW.time_part()


# -- constructors -------------------------------------------------------------

@register("datetime", 1, aliases=("to_datetime",))
def datetime_(v):
    if isinstance(v, ADateTime):
        return v
    if isinstance(v, str):
        return ADateTime.parse(v)
    if isinstance(v, int):
        return ADateTime(v)
    raise TypeError_(f"datetime(): cannot convert {type(v).__name__}")


@register("date", 1, aliases=("to_date",))
def date_(v):
    if isinstance(v, ADate):
        return v
    if isinstance(v, ADateTime):
        return v.date_part()
    if isinstance(v, str):
        return ADate.parse(v)
    raise TypeError_(f"date(): cannot convert {type(v).__name__}")


@register("time", 1, aliases=("to_time",))
def time_(v):
    if isinstance(v, ATime):
        return v
    if isinstance(v, ADateTime):
        return v.time_part()
    if isinstance(v, str):
        return ATime.parse(v)
    raise TypeError_(f"time(): cannot convert {type(v).__name__}")


@register("duration", 1, aliases=("to_duration",))
def duration_(v):
    if isinstance(v, ADuration):
        return v
    if isinstance(v, str):
        return ADuration.parse(v)
    raise TypeError_(f"duration(): cannot convert {type(v).__name__}")


# -- arithmetic ('+'/'-' dispatch here from scalar numeric_add/subtract) --------

def _duration_millis(d: ADuration) -> int:
    """Approximate a duration in millis (months -> 30 days, the standard
    ADM convention for mixed arithmetic)."""
    return d.months * 30 * _MILLIS_PER_DAY + d.millis


def try_temporal_add(a, b):
    for x, y in ((a, b), (b, a)):
        if isinstance(x, ADateTime) and isinstance(y, ADuration):
            return ADateTime(x.millis + _duration_millis(y))
        if isinstance(x, ADate) and isinstance(y, ADuration):
            millis = x.days * _MILLIS_PER_DAY + _duration_millis(y)
            return ADate(millis // _MILLIS_PER_DAY)
        if isinstance(x, ATime) and isinstance(y, ADuration):
            return ATime((x.millis + _duration_millis(y)) % _MILLIS_PER_DAY)
    if isinstance(a, ADuration) and isinstance(b, ADuration):
        return ADuration(a.months + b.months, a.millis + b.millis)
    return NotImplemented


def try_temporal_subtract(a, b):
    if isinstance(a, ADateTime) and isinstance(b, ADuration):
        return ADateTime(a.millis - _duration_millis(b))
    if isinstance(a, ADate) and isinstance(b, ADuration):
        millis = a.days * _MILLIS_PER_DAY - _duration_millis(b)
        return ADate(millis // _MILLIS_PER_DAY)
    if isinstance(a, ATime) and isinstance(b, ADuration):
        return ATime((a.millis - _duration_millis(b)) % _MILLIS_PER_DAY)
    if isinstance(a, ADateTime) and isinstance(b, ADateTime):
        return ADuration(0, a.millis - b.millis)
    if isinstance(a, ADate) and isinstance(b, ADate):
        return ADuration(0, (a.days - b.days) * _MILLIS_PER_DAY)
    if isinstance(a, ADuration) and isinstance(b, ADuration):
        return ADuration(a.months - b.months, a.millis - b.millis)
    return NotImplemented


# -- field extractors ---------------------------------------------------------------

def _to_datetime(v) -> ADateTime:
    if isinstance(v, ADateTime):
        return v
    if isinstance(v, ADate):
        return ADateTime(v.days * _MILLIS_PER_DAY)
    raise TypeError_(f"expected date/datetime, got {type(v).__name__}")


@register("get_year", 1)
def get_year(v):
    return _to_datetime(v).date_part().to_date().year


@register("get_month", 1)
def get_month(v):
    return _to_datetime(v).date_part().to_date().month


@register("get_day", 1)
def get_day(v):
    return _to_datetime(v).date_part().to_date().day


@register("get_hour", 1)
def get_hour(v):
    if isinstance(v, ATime):
        return v.millis // 3_600_000
    return _to_datetime(v).time_part().millis // 3_600_000


@register("get_minute", 1)
def get_minute(v):
    millis = v.millis if isinstance(v, ATime) else \
        _to_datetime(v).time_part().millis
    return millis % 3_600_000 // 60_000


@register("get_second", 1)
def get_second(v):
    millis = v.millis if isinstance(v, ATime) else \
        _to_datetime(v).time_part().millis
    return millis % 60_000 // 1000


@register("day_of_week", 1)
def day_of_week(v):
    """ISO day of week: Monday=1 .. Sunday=7."""
    return _to_datetime(v).date_part().to_date().isoweekday()


@register("unix_time_from_datetime_in_ms", 1)
def unix_time_from_datetime_in_ms(v):
    return _to_datetime(v).millis


# -- intervals and binning (the §V-D features) ------------------------------------------

def _chronon(v) -> tuple[int, TypeTag]:
    if isinstance(v, ADateTime):
        return v.millis, TypeTag.DATETIME
    if isinstance(v, ADate):
        return v.days, TypeTag.DATE
    if isinstance(v, ATime):
        return v.millis, TypeTag.TIME
    raise TypeError_(f"expected a temporal value, got {type(v).__name__}")


def _from_chronon(c: int, tag: TypeTag):
    if tag is TypeTag.DATETIME:
        return ADateTime(c)
    if tag is TypeTag.DATE:
        return ADate(c)
    return ATime(c)


def _duration_chronons(d: ADuration, tag: TypeTag) -> int:
    millis = _duration_millis(d)
    if tag is TypeTag.DATE:
        if millis % _MILLIS_PER_DAY:
            raise InvalidArgumentError(
                "bin duration for dates must be whole days"
            )
        return millis // _MILLIS_PER_DAY
    return millis


@register("interval", 2)
def interval(start, end):
    (s, tag_s), (e, tag_e) = _chronon(start), _chronon(end)
    if tag_s != tag_e:
        raise TypeError_("interval endpoints must have the same type")
    return AInterval(s, e, tag_s)


@register("get_interval_start", 1)
def get_interval_start(iv: AInterval):
    if not isinstance(iv, AInterval):
        raise TypeError_("get_interval_start: not an interval")
    return _from_chronon(iv.start, iv.tag)


@register("get_interval_end", 1)
def get_interval_end(iv: AInterval):
    if not isinstance(iv, AInterval):
        raise TypeError_("get_interval_end: not an interval")
    return _from_chronon(iv.end, iv.tag)


@register("get_overlapping_interval", 2)
def get_overlapping_interval(a: AInterval, b: AInterval):
    if not (isinstance(a, AInterval) and isinstance(b, AInterval)):
        raise TypeError_("get_overlapping_interval: not intervals")
    if not a.overlaps(b):
        return None
    return AInterval(max(a.start, b.start), min(a.end, b.end), a.tag)


@register("interval_overlapping", 2, aliases=("interval_overlaps",))
def interval_overlapping(a: AInterval, b: AInterval):
    if not (isinstance(a, AInterval) and isinstance(b, AInterval)):
        raise TypeError_("interval_overlapping: not intervals")
    return a.overlaps(b)


@register("duration_from_interval", 1)
def duration_from_interval(iv: AInterval):
    if not isinstance(iv, AInterval):
        raise TypeError_("duration_from_interval: not an interval")
    span = iv.end - iv.start
    if iv.tag is TypeTag.DATE:
        span *= _MILLIS_PER_DAY
    return ADuration(0, span)


@register("interval_bin", 3)
def interval_bin(value, anchor, bin_duration: ADuration):
    """The bin (as an interval) containing ``value``, where bins tile the
    timeline starting at ``anchor`` with width ``bin_duration``.

    ``interval_bin(datetime("...T10:30"), datetime("...T00:00"),
    duration("PT1H"))`` is the 10:00-11:00 bin."""
    c, tag = _chronon(value)
    a, atag = _chronon(anchor)
    if tag != atag:
        raise TypeError_("interval_bin: value/anchor type mismatch")
    width = _duration_chronons(bin_duration, tag)
    if width <= 0:
        raise InvalidArgumentError("interval_bin: non-positive bin size")
    index = (c - a) // width
    start = a + index * width
    return AInterval(start, start + width, tag)


@register("overlap_bins", 3)
def overlap_bins(iv: AInterval, anchor, bin_duration: ADuration):
    """All bins an interval overlaps — the §V-D feature: an activity
    spanning bins is allocated to every bin it touches, and the caller can
    intersect (via get_overlapping_interval) to apportion its time."""
    if not isinstance(iv, AInterval):
        raise TypeError_("overlap_bins: not an interval")
    a, atag = _chronon(anchor)
    if atag != iv.tag:
        raise TypeError_("overlap_bins: anchor type mismatch")
    width = _duration_chronons(bin_duration, iv.tag)
    if width <= 0:
        raise InvalidArgumentError("overlap_bins: non-positive bin size")
    first = (iv.start - a) // width
    last = (iv.end - 1 - a) // width if iv.end > iv.start else first
    return [
        AInterval(a + i * width, a + (i + 1) * width, iv.tag)
        for i in range(first, last + 1)
    ]
