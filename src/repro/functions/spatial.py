"""Spatial builtin functions ("simple (Googlemap style) spatial
attributes", paper §IV): constructors, accessors, and the predicates the
R-tree access-method rule recognizes (spatial_intersect against a
rectangle/circle)."""

from __future__ import annotations

from repro.adm.values import (
    ACircle,
    ALine,
    APoint,
    APolygon,
    ARectangle,
)
from repro.common.errors import TypeError_
from repro.functions.registry import register


@register("create_point", 2)
def create_point(x, y):
    return APoint(float(x), float(y))


@register("create_rectangle", 2)
def create_rectangle(bottom_left, top_right):
    if not (isinstance(bottom_left, APoint) and isinstance(top_right, APoint)):
        raise TypeError_("create_rectangle: corners must be points")
    return ARectangle(bottom_left, top_right)


@register("create_circle", 2)
def create_circle(center, radius):
    if not isinstance(center, APoint):
        raise TypeError_("create_circle: center must be a point")
    return ACircle(center, float(radius))


@register("create_line", 2)
def create_line(p1, p2):
    if not (isinstance(p1, APoint) and isinstance(p2, APoint)):
        raise TypeError_("create_line: endpoints must be points")
    return ALine(p1, p2)


@register("create_polygon", (3, None))
def create_polygon(*points):
    if not all(isinstance(p, APoint) for p in points):
        raise TypeError_("create_polygon: vertices must be points")
    return APolygon(tuple(points))


@register("get_x", 1)
def get_x(p):
    if not isinstance(p, APoint):
        raise TypeError_("get_x: not a point")
    return p.x


@register("get_y", 1)
def get_y(p):
    if not isinstance(p, APoint):
        raise TypeError_("get_y: not a point")
    return p.y


@register("spatial_distance", 2)
def spatial_distance(a, b):
    if not (isinstance(a, APoint) and isinstance(b, APoint)):
        raise TypeError_("spatial_distance: points required")
    return a.distance(b)


@register("spatial_intersect", 2)
def spatial_intersect(a, b):
    """True if the two spatial values intersect.  The combinations the
    system's queries use: point-in-rectangle/circle/polygon and
    rectangle-rectangle; symmetric."""
    for x, y in ((a, b), (b, a)):
        if isinstance(x, APoint):
            if isinstance(y, ARectangle):
                return y.contains_point(x)
            if isinstance(y, ACircle):
                return y.contains_point(x)
            if isinstance(y, APolygon):
                return y.contains_point(x)
            if isinstance(y, APoint):
                return x == y
        if isinstance(x, ARectangle) and isinstance(y, ARectangle):
            return x.intersects(y)
        if isinstance(x, ARectangle) and isinstance(y, ACircle):
            return x.intersects(y.mbr())  # conservative MBR test
    raise TypeError_(
        f"spatial_intersect: unsupported combination "
        f"{type(a).__name__}/{type(b).__name__}"
    )


@register("spatial_cell", 4)
def spatial_cell(p, origin, cell_x, cell_y):
    """The grid cell (as a rectangle) containing point p — AsterixDB's
    grid-aggregation helper."""
    if not (isinstance(p, APoint) and isinstance(origin, APoint)):
        raise TypeError_("spatial_cell: points required")
    ix = (p.x - origin.x) // float(cell_x)
    iy = (p.y - origin.y) // float(cell_y)
    bl = APoint(origin.x + ix * cell_x, origin.y + iy * cell_y)
    return ARectangle(bl, APoint(bl.x + cell_x, bl.y + cell_y))


# -- string constructors (the ADM textual forms: point("x,y") etc.) ---------

@register("point", 1)
def point_from_string(text):
    if isinstance(text, APoint):
        return text
    return APoint.parse(text)


@register("rectangle", 1)
def rectangle_from_string(text):
    if isinstance(text, ARectangle):
        return text
    a, b = text.split(" ")
    return ARectangle(APoint.parse(a), APoint.parse(b))


@register("circle", 1)
def circle_from_string(text):
    if isinstance(text, ACircle):
        return text
    center, radius = text.rsplit(" ", 1)
    return ACircle(APoint.parse(center), float(radius))


@register("line", 1)
def line_from_string(text):
    if isinstance(text, ALine):
        return text
    a, b = text.split(" ")
    return ALine(APoint.parse(a), APoint.parse(b))


@register("polygon", 1)
def polygon_from_string(text):
    if isinstance(text, APolygon):
        return text
    return APolygon(tuple(APoint.parse(p) for p in text.split(" ")))
