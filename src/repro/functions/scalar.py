"""Scalar builtin functions: numeric, comparison, logic, string, object,
collection, and type functions.

Importing this module populates the registry (see
:mod:`repro.functions.registry`); temporal and spatial families live in
their own modules.
"""

from __future__ import annotations

import math
import re

from repro.adm.comparators import comparable, compare, eq as deep_eq
from repro.adm.values import (
    MISSING,
    Multiset,
    TypeTag,
    is_numeric_tag,
    tag_of,
)
from repro.common.errors import InvalidArgumentError, TypeError_
from repro.functions.registry import register


# --- arithmetic ------------------------------------------------------------

def _require_numeric(name, *values):
    for v in values:
        if not is_numeric_tag(tag_of(v)):
            raise TypeError_(
                f"{name}: expected a number, got {type(v).__name__} "
                f"({v!r})"
            )


@register("numeric_add", 2, aliases=("add",))
def numeric_add(a, b):
    # '+' is also datetime/date + duration (temporal module re-dispatches)
    from repro.functions.temporal import try_temporal_add

    result = try_temporal_add(a, b)
    if result is not NotImplemented:
        return result
    _require_numeric("+", a, b)
    return a + b


@register("numeric_subtract", 2, aliases=("subtract",))
def numeric_subtract(a, b):
    from repro.functions.temporal import try_temporal_subtract

    result = try_temporal_subtract(a, b)
    if result is not NotImplemented:
        return result
    _require_numeric("-", a, b)
    return a - b


@register("numeric_multiply", 2, aliases=("multiply",))
def numeric_multiply(a, b):
    _require_numeric("*", a, b)
    return a * b


@register("numeric_divide", 2, aliases=("divide",))
def numeric_divide(a, b):
    """SQL++ '/': true division; divide-by-zero yields null (the hardened
    error behaviour Section VII required, not a crash)."""
    _require_numeric("/", a, b)
    if b == 0:
        return None
    result = a / b
    return result


@register("numeric_idiv", 2, aliases=("idiv", "div"))
def numeric_idiv(a, b):
    _require_numeric("div", a, b)
    if b == 0:
        return None
    return int(a // b)


@register("numeric_mod", 2, aliases=("mod",))
def numeric_mod(a, b):
    _require_numeric("mod", a, b)
    if b == 0:
        return None
    return a % b

@register("numeric_unary_minus", 1, aliases=("neg",))
def numeric_unary_minus(a):
    _require_numeric("unary -", a)
    return -a


@register("abs", 1)
def abs_(a):
    _require_numeric("abs", a)
    return abs(a)


@register("ceiling", 1, aliases=("ceil",))
def ceiling(a):
    _require_numeric("ceiling", a)
    return math.ceil(a)


@register("floor", 1)
def floor(a):
    _require_numeric("floor", a)
    return math.floor(a)


@register("round", (1, 2))
def round_(a, digits=0):
    _require_numeric("round", a, digits)
    return round(a, int(digits)) if digits else float(round(a)) \
        if isinstance(a, float) else round(a)


@register("sqrt", 1)
def sqrt(a):
    _require_numeric("sqrt", a)
    if a < 0:
        return None
    return math.sqrt(a)


@register("power", 2, aliases=("pow",))
def power(a, b):
    _require_numeric("power", a, b)
    return a ** b


@register("sign", 1)
def sign(a):
    _require_numeric("sign", a)
    return (a > 0) - (a < 0)


# --- comparison -----------------------------------------------------------------

def _compare_or_null(a, b):
    if not comparable(a, b):
        return None  # incomparable types -> unknown (SQL++ null)
    return compare(a, b)


@register("eq", 2)
def eq(a, b):
    c = _compare_or_null(a, b)
    return None if c is None else c == 0


@register("neq", 2, aliases=("ne",))
def neq(a, b):
    c = _compare_or_null(a, b)
    return None if c is None else c != 0


@register("lt", 2)
def lt(a, b):
    c = _compare_or_null(a, b)
    return None if c is None else c < 0


@register("le", 2, aliases=("lte",))
def le(a, b):
    c = _compare_or_null(a, b)
    return None if c is None else c <= 0


@register("gt", 2)
def gt(a, b):
    c = _compare_or_null(a, b)
    return None if c is None else c > 0


@register("ge", 2, aliases=("gte",))
def ge(a, b):
    c = _compare_or_null(a, b)
    return None if c is None else c >= 0


@register("deep_equal", 2)
def deep_equal(a, b):
    return deep_eq(a, b)


@register("between", 3)
def between(v, lo, hi):
    left = ge(v, lo)
    right = le(v, hi)
    return and_(left, right)


# --- three-valued logic ------------------------------------------------------------

@register("and", (2, None), handles_unknowns=True)
def and_(*args):
    saw_unknown = False
    for a in args:
        if a is False:
            return False
        if a is MISSING or a is None:
            saw_unknown = True
        elif not isinstance(a, bool):
            return None  # non-boolean in a logical context -> unknown
    return None if saw_unknown else True


@register("or", (2, None), handles_unknowns=True)
def or_(*args):
    saw_unknown = False
    for a in args:
        if a is True:
            return True
        if a is MISSING or a is None:
            saw_unknown = True
        elif not isinstance(a, bool):
            return None
    return None if saw_unknown else False


@register("not", 1)
def not_(a):
    if not isinstance(a, bool):
        return None
    return not a


# --- string functions -----------------------------------------------------------------

def _require_string(name, *values):
    for v in values:
        if not isinstance(v, str):
            raise TypeError_(
                f"{name}: expected a string, got {type(v).__name__}"
            )


@register("string_length", 1, aliases=("length", "len"))
def string_length(s):
    _require_string("length", s)
    return len(s)


@register("lowercase", 1, aliases=("lower",))
def lowercase(s):
    _require_string("lower", s)
    return s.lower()


@register("uppercase", 1, aliases=("upper",))
def uppercase(s):
    _require_string("upper", s)
    return s.upper()


@register("trim", (1, 2))
def trim(s, chars=None):
    _require_string("trim", s)
    return s.strip(chars)


@register("ltrim", (1, 2))
def ltrim(s, chars=None):
    _require_string("ltrim", s)
    return s.lstrip(chars)


@register("rtrim", (1, 2))
def rtrim(s, chars=None):
    _require_string("rtrim", s)
    return s.rstrip(chars)


@register("substr", (2, 3), aliases=("substring",))
def substr(s, start, length=None):
    """SQL++ substr: 0-based start (negative counts from the end)."""
    _require_string("substr", s)
    start = int(start)
    if start < 0:
        start += len(s)
    if start < 0 or start > len(s):
        return None
    if length is None:
        return s[start:]
    if length < 0:
        return None
    return s[start:start + int(length)]


@register("contains", 2)
def contains(s, needle):
    _require_string("contains", s, needle)
    return needle in s


@register("starts_with", 2)
def starts_with(s, prefix):
    _require_string("starts_with", s, prefix)
    return s.startswith(prefix)


@register("ends_with", 2)
def ends_with(s, suffix):
    _require_string("ends_with", s, suffix)
    return s.endswith(suffix)


@register("string_concat", (1, None), aliases=("concat",))
def string_concat(*parts):
    for p in parts:
        _require_string("||", p)
    return "".join(parts)


@register("split", 2)
def split(s, sep):
    _require_string("split", s, sep)
    return s.split(sep)


@register("string_join", 2)
def string_join(items, sep):
    _require_string("string_join", sep)
    return sep.join(items)


@register("repeat", 2)
def repeat(s, n):
    _require_string("repeat", s)
    return s * int(n)


@register("replace", 3)
def replace(s, old, new):
    _require_string("replace", s, old, new)
    return s.replace(old, new)


@register("like", 2)
def like(s, pattern):
    """SQL LIKE: % matches any run, _ any single character."""
    _require_string("like", s, pattern)
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, s, flags=re.DOTALL) is not None


@register("regexp_contains", 2)
def regexp_contains(s, pattern):
    _require_string("regexp_contains", s, pattern)
    return re.search(pattern, s) is not None


@register("codepoint", 1)
def codepoint(s):
    _require_string("codepoint", s)
    return [ord(ch) for ch in s]


# --- collection functions --------------------------------------------------------------

def _require_collection(name, v):
    if not isinstance(v, (list, Multiset)):
        raise TypeError_(
            f"{name}: expected a collection, got {type(v).__name__}"
        )


@register("coll_count", 1, aliases=("array_count",))
def coll_count(xs):
    """Collection count: counts all items (Fig. 3(c)'s COLL_COUNT)."""
    _require_collection("coll_count", xs)
    return len(xs)


@register("coll_sum", 1, aliases=("array_sum",))
def coll_sum(xs):
    _require_collection("coll_sum", xs)
    vals = [x for x in xs if x is not None and x is not MISSING]
    return sum(vals) if vals else None


@register("coll_avg", 1, aliases=("array_avg",))
def coll_avg(xs):
    _require_collection("coll_avg", xs)
    vals = [x for x in xs if x is not None and x is not MISSING]
    return sum(vals) / len(vals) if vals else None


@register("coll_min", 1, aliases=("array_min",))
def coll_min(xs):
    from repro.adm.comparators import sort_key

    _require_collection("coll_min", xs)
    vals = [x for x in xs if x is not None and x is not MISSING]
    return min(vals, key=sort_key) if vals else None


@register("coll_max", 1, aliases=("array_max",))
def coll_max(xs):
    from repro.adm.comparators import sort_key

    _require_collection("coll_max", xs)
    vals = [x for x in xs if x is not None and x is not MISSING]
    return max(vals, key=sort_key) if vals else None


@register("array_contains", 2)
def array_contains(xs, v):
    _require_collection("array_contains", xs)
    return any(deep_eq(x, v) for x in xs)


@register("array_distinct", 1)
def array_distinct(xs):
    from repro.adm.values import canonical_bytes

    _require_collection("array_distinct", xs)
    seen = set()
    out = []
    for x in xs:
        k = canonical_bytes(x)
        if k not in seen:
            seen.add(k)
            out.append(x)
    return out


@register("array_sort", 1)
def array_sort(xs):
    from repro.adm.comparators import sort_key

    _require_collection("array_sort", xs)
    return sorted(xs, key=sort_key)


@register("array_append", (2, None))
def array_append(xs, *vs):
    _require_collection("array_append", xs)
    return list(xs) + list(vs)


@register("array_concat", (2, None))
def array_concat(*arrays):
    out = []
    for xs in arrays:
        _require_collection("array_concat", xs)
        out.extend(xs)
    return out


@register("array_flatten", 1)
def array_flatten(xs):
    _require_collection("array_flatten", xs)
    out = []
    for x in xs:
        if isinstance(x, (list, Multiset)):
            out.extend(x)
        else:
            out.append(x)
    return out


@register("array_slice", (2, 3))
def array_slice(xs, start, end=None):
    _require_collection("array_slice", xs)
    end = len(xs) if end is None else int(end)
    return list(xs)[int(start):end]


@register("get_item", 2, handles_unknowns=True)
def get_item(xs, i):
    """Index access xs[i]: out-of-range is MISSING, as in SQL++."""
    if xs is MISSING or i is MISSING:
        return MISSING
    if xs is None or i is None:
        return None
    if not isinstance(xs, (list, Multiset)):
        return MISSING
    i = int(i)
    if i < 0:
        i += len(xs)
    if 0 <= i < len(xs):
        return xs[i]
    return MISSING


@register("range", 2)
def range_(a, b):
    """SQL++ range(a, b): integers a..b inclusive."""
    return list(range(int(a), int(b) + 1))


# --- object functions --------------------------------------------------------------------

@register("field_access", 2, handles_unknowns=True)
def field_access(obj, name):
    """obj.name — accessing a non-object or absent field yields MISSING."""
    if obj is MISSING or name is MISSING:
        return MISSING
    if obj is None or name is None:
        return None
    if not isinstance(obj, dict):
        return MISSING
    return obj.get(name, MISSING)


@register("object_names", 1)
def object_names(obj):
    if not isinstance(obj, dict):
        raise TypeError_("object_names: not an object")
    return sorted(k for k, v in obj.items() if v is not MISSING)


@register("object_values", 1)
def object_values(obj):
    if not isinstance(obj, dict):
        raise TypeError_("object_values: not an object")
    return [obj[k] for k in sorted(obj) if obj[k] is not MISSING]


@register("object_merge", (2, None))
def object_merge(*objs):
    out: dict = {}
    for obj in objs:
        if not isinstance(obj, dict):
            raise TypeError_("object_merge: not an object")
        out.update(obj)
    return out


@register("object_remove", 2)
def object_remove(obj, name):
    if not isinstance(obj, dict):
        raise TypeError_("object_remove: not an object")
    return {k: v for k, v in obj.items() if k != name}


@register("object_add", 3)
def object_add(obj, name, value):
    if not isinstance(obj, dict):
        raise TypeError_("object_add: not an object")
    out = dict(obj)
    out[name] = value
    return out


# --- type predicates & conversion ------------------------------------------------------------

@register("is_null", 1, handles_unknowns=True)
def is_null(v):
    return v is None


@register("is_missing", 1, handles_unknowns=True)
def is_missing(v):
    return v is MISSING


@register("is_unknown", 1, handles_unknowns=True)
def is_unknown(v):
    return v is None or v is MISSING


@register("is_boolean", 1, handles_unknowns=True)
def is_boolean(v):
    if v is MISSING:
        return MISSING
    if v is None:
        return None
    return isinstance(v, bool)


@register("is_number", 1, handles_unknowns=True)
def is_number(v):
    if v is MISSING:
        return MISSING
    if v is None:
        return None
    return is_numeric_tag(tag_of(v))


@register("is_string", 1, handles_unknowns=True)
def is_string(v):
    if v is MISSING:
        return MISSING
    if v is None:
        return None
    return isinstance(v, str)


@register("is_array", 1, handles_unknowns=True)
def is_array(v):
    if v is MISSING:
        return MISSING
    if v is None:
        return None
    return tag_of(v) is TypeTag.ARRAY


@register("is_object", 1, handles_unknowns=True)
def is_object(v):
    if v is MISSING:
        return MISSING
    if v is None:
        return None
    return isinstance(v, dict)


@register("if_missing", (2, None), handles_unknowns=True)
def if_missing(*args):
    for a in args:
        if a is not MISSING:
            return a
    return None


@register("if_null", (2, None), handles_unknowns=True)
def if_null(*args):
    for a in args:
        if a is not None and a is not MISSING:
            return a
    return None


@register("if_missing_or_null", (2, None), handles_unknowns=True,
          aliases=("coalesce",))
def if_missing_or_null(*args):
    for a in args:
        if a is not None and a is not MISSING:
            return a
    return None


@register("to_string", 1)
def to_string(v):
    from repro.adm.parser import format_adm

    if isinstance(v, str):
        return v
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, (int, float)):
        return str(v)
    return format_adm(v)


@register("to_bigint", 1, aliases=("to_int",))
def to_bigint(v):
    try:
        if isinstance(v, str):
            return int(v.strip())
        if isinstance(v, (int, float)):
            return int(v)
    except ValueError:
        return None
    return None


@register("to_double", 1)
def to_double(v):
    try:
        if isinstance(v, str):
            return float(v.strip())
        if isinstance(v, (int, float)):
            return float(v)
    except ValueError:
        return None
    return None


@register("to_boolean", 1)
def to_boolean(v):
    if isinstance(v, bool):
        return v
    if isinstance(v, str):
        if v.lower() == "true":
            return True
        if v.lower() == "false":
            return False
        return None
    if isinstance(v, (int, float)):
        return v != 0
    return None


# --- similarity (powers the ngram index's verify step) -----------------------------------------

@register("edit_distance", 2)
def edit_distance(a, b):
    _require_string("edit_distance", a, b)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        current = [i]
        for j, cb in enumerate(b, 1):
            current.append(min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (ca != cb),
            ))
        previous = current
    return previous[-1]


@register("similarity_jaccard", 2)
def similarity_jaccard(xs, ys):
    from repro.adm.serializer import serialize

    _require_collection("similarity_jaccard", xs)
    _require_collection("similarity_jaccard", ys)
    sa = {serialize(x) for x in xs}
    sb = {serialize(y) for y in ys}
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


@register("word_tokens", 1)
def word_tokens_fn(s):
    from repro.storage.lsm import word_tokens

    _require_string("word_tokens", s)
    return sorted(word_tokens(s))


@register("gram_tokens", 2)
def gram_tokens_fn(s, n):
    from repro.storage.lsm import ngram_tokens

    _require_string("gram_tokens", s)
    return sorted(ngram_tokens(s, int(n)))


@register("ftcontains", 2)
def ftcontains(text, query):
    """Full-text containment: every word token of ``query`` occurs in
    ``text`` (the predicate KEYWORD indexes accelerate)."""
    from repro.storage.lsm import word_tokens

    _require_string("ftcontains", text, query)
    return word_tokens(query) <= word_tokens(text)


@register("uuid_str", 1)
def uuid_str(v):
    import uuid as _uuid

    if not isinstance(v, _uuid.UUID):
        raise TypeError_("uuid_str: not a uuid")
    return str(v)


def _raise(msg):
    raise InvalidArgumentError(msg)
