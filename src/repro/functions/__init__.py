"""Builtin function library: scalar, temporal, spatial, and aggregates.

Importing this package populates the registry.
"""

from repro.functions import aggregates as _aggregates  # noqa: F401
from repro.functions import scalar as _scalar          # noqa: F401
from repro.functions import spatial as _spatial        # noqa: F401
from repro.functions import temporal as _temporal      # noqa: F401
from repro.functions.aggregates import AggregateState
from repro.functions.registry import (
    all_aggregate_names,
    all_function_names,
    call,
    is_aggregate,
    is_scalar,
    resolve,
    resolve_aggregate,
)
from repro.functions.temporal import set_session_now

__all__ = [
    "AggregateState",
    "all_aggregate_names",
    "all_function_names",
    "call",
    "is_aggregate",
    "is_scalar",
    "resolve",
    "resolve_aggregate",
    "set_session_now",
]
