"""The builtin function registry.

SQL++ and AQL compile every operator and builtin call down to named
functions (paper feature 7 is mostly delivered here: "rich data type
support, including numeric, textual, temporal, and simple spatial data").
Each scalar function is registered with its null/missing behaviour:

* by default MISSING arguments make the result MISSING and null arguments
  make it null (SQL++'s propagation rule);
* functions registered with ``handles_unknowns=True`` see raw MISSING/null
  values (type predicates, if_missing, three-valued AND/OR, ...).

Aggregate functions live in a separate registry keyed the same way; they
are (init, step, finish) triples used by the group-by and aggregate
runtime operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import MISSING
from repro.common.errors import IdentifierError


@dataclass(frozen=True)
class ScalarFunction:
    name: str
    impl: object              # callable(*args)
    arity: object             # int or (min, max) with max=None for varargs
    handles_unknowns: bool = False

    def check_arity(self, n: int) -> bool:
        if isinstance(self.arity, int):
            return n == self.arity
        lo, hi = self.arity
        return n >= lo and (hi is None or n <= hi)


@dataclass(frozen=True)
class AggregateFunction:
    """(init, step, finish) with SQL semantics: nulls are skipped, an
    all-null/empty input yields null (except count, which yields 0).

    ``step_many`` is an optional bulk fast path,
    ``callable(state, values) -> state`` over a non-empty,
    already-unknown-filtered value list.  It must return exactly what a
    left fold of ``step`` over the same list would — the batched runtime
    uses it when present and falls back to folding ``step`` otherwise.
    """

    name: str
    init: object
    step: object              # callable(state, value) -> state
    finish: object            # callable(state) -> value
    skip_unknowns: bool = True
    step_many: object = None  # optional callable(state, [values]) -> state


_SCALARS: dict[str, ScalarFunction] = {}
_AGGREGATES: dict[str, AggregateFunction] = {}


def register(name: str, arity, *, handles_unknowns: bool = False,
             aliases: tuple = ()):
    """Decorator registering a scalar function under ``name`` (and
    aliases).  Names are case-insensitive; both '-' and '_' spellings are
    accepted (AsterixDB's historical names use dashes, SQL++ underscores)."""

    def wrap(fn):
        func = ScalarFunction(name, fn, arity, handles_unknowns)
        for alias in (name, *aliases):
            _SCALARS[_canonical(alias)] = func
        return fn

    return wrap


def register_aggregate(name: str, init, step, finish, *,
                       skip_unknowns: bool = True, aliases: tuple = (),
                       step_many=None):
    agg = AggregateFunction(name, init, step, finish, skip_unknowns,
                            step_many)
    for alias in (name, *aliases):
        _AGGREGATES[_canonical(alias)] = agg
    return agg


def _canonical(name: str) -> str:
    return name.lower().replace("-", "_")


def resolve(name: str) -> ScalarFunction:
    func = _SCALARS.get(_canonical(name))
    if func is None:
        raise IdentifierError(f"unknown function: {name}")
    return func


def resolve_aggregate(name: str) -> AggregateFunction:
    agg = _AGGREGATES.get(_canonical(name))
    if agg is None:
        raise IdentifierError(f"unknown aggregate function: {name}")
    return agg


def is_aggregate(name: str) -> bool:
    return _canonical(name) in _AGGREGATES


def is_scalar(name: str) -> bool:
    return _canonical(name) in _SCALARS


def call(name: str, *args):
    """Resolve and invoke a scalar function with SQL++ unknown
    propagation."""
    func = resolve(name)
    if not func.check_arity(len(args)):
        raise IdentifierError(
            f"wrong number of arguments for {name}: {len(args)}"
        )
    if not func.handles_unknowns:
        if any(a is MISSING for a in args):
            return MISSING
        if any(a is None for a in args):
            return None
    return func.impl(*args)


def all_function_names() -> list[str]:
    return sorted(_SCALARS)


def all_aggregate_names() -> list[str]:
    return sorted(_AGGREGATES)
