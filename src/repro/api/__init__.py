"""Public API: the embedded AsterixDB-like instance."""

from repro.api.instance import AsterixInstance, Result, connect

__all__ = ["AsterixInstance", "Result", "connect"]
