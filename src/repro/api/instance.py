"""The public face of the system: one embedded AsterixDB-like instance.

``AsterixInstance`` owns a simulated cluster, the metadata catalog, and
the full compile chain (parse -> translate -> optimize -> jobgen -> run).
Both query languages are served; AQL is accepted but flagged deprecated,
matching the paper ("We have now deprecated AQL in favor of SQL++").

    >>> db = AsterixInstance(tmpdir)
    >>> db.execute('CREATE TYPE UserType AS { id: int };')
    >>> db.execute('CREATE DATASET Users(UserType) PRIMARY KEY id;')
    >>> db.execute('INSERT INTO Users ({"id": 1, "name": "ann"});')
    >>> db.query('SELECT VALUE u.name FROM Users u;')
    ['ann']

Layer contract: this is the ONLY module that sees every layer at once.
It parses statements (:mod:`repro.lang`), applies DDL to the catalog
(:mod:`repro.metadata`), and sends DML/queries down the compile chain
(:mod:`repro.algebricks`) onto the simulated cluster
(:mod:`repro.hyracks`).  Nothing below this layer knows about statement
scripts, sessions, or result shaping.  docs/ARCHITECTURE.md walks the
whole pipeline with a traced example.

Observability (docs/OBSERVABILITY.md): ``execute(..., trace=True)``
attaches a :class:`~repro.observability.QueryTrace` to each
:class:`Result` (per-phase spans, fired rewrite rules, per-operator
partition costs, metric deltas); :meth:`AsterixInstance.explain` compiles
without executing and returns a structured
:class:`~repro.observability.ExplainResult` (optimized Algebricks plan +
Hyracks job DAG as dicts and pretty text).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.adm.values import ADateTime
from repro.algebricks import compile_plan, explain as explain_plan, optimize
from repro.analysis import analyze_statement
from repro.common.config import ClusterConfig
from repro.common.errors import AsterixError, MetadataError
from repro.external import HDFSAdapter, LocalFSAdapter, SimulatedHDFS
from repro.functions import set_session_now
from repro.hyracks import ClusterController
from repro.lang import core_ast as ast
from repro.lang.aql.parser import parse_aql
from repro.lang.sqlpp.parser import parse_sqlpp
from repro.lang.translator import Translator
from repro.metadata.catalog import MetadataManager
from repro.observability import (
    ExplainResult,
    QueryTrace,
    access_methods,
    RewriteRecorder,
    Span,
    get_registry,
    job_to_dict,
    maybe_phase,
    plan_to_dict,
)


@dataclass
class Result:
    """Outcome of one statement."""

    kind: str                      # query | dml | ddl | explain
    rows: list = field(default_factory=list)
    message: str = ""
    profile: object = None         # JobProfile for query/dml
    plan: str = ""                 # optimized logical plan (explain)
    warnings: list = field(default_factory=list)
    trace: object = None           # QueryTrace when trace=True

    def __iter__(self):
        return iter(self.rows)


class AsterixInstance:
    """An embedded Big Data Management System instance."""

    def __init__(self, base_dir: str, config: ClusterConfig | None = None,
                 injector=None):
        """``injector`` (a :class:`~repro.resilience.FaultInjector`) wires
        deterministic fault injection through every node's storage, WAL,
        and executor paths; tests and the chaos harness arm it with a
        :class:`~repro.resilience.FaultSchedule` after setup."""
        self.base_dir = base_dir
        self._hdfs: SimulatedHDFS | None = None
        marker = os.path.join(base_dir, "instance.json")
        reopening = os.path.exists(marker)
        if reopening:
            config = self._load_config(marker)
        self.cluster = ClusterController(os.path.join(base_dir, "cluster"),
                                         config, injector=injector)
        if reopening:
            self.metadata = MetadataManager.reopen(
                self.cluster, self._reopen_adapter)
        else:
            self.metadata = MetadataManager(self.cluster)
            self._save_config(marker)

    @staticmethod
    def _load_config(marker: str) -> ClusterConfig:
        import json

        from repro.common.config import (
            CostModel,
            ExecutorConfig,
            NodeConfig,
            ResilienceConfig,
        )

        with open(marker) as f:
            data = json.load(f)
        return ClusterConfig(
            num_nodes=data["num_nodes"],
            partitions_per_node=data["partitions_per_node"],
            page_size=data["page_size"],
            frame_size=data["frame_size"],
            node=NodeConfig(**data["node"]),
            cost=CostModel(**data["cost"]),
            executor=ExecutorConfig(**data.get("executor", {})),
            resilience=ResilienceConfig(**data.get("resilience", {})),
        )

    def _save_config(self, marker: str) -> None:
        import dataclasses
        import json

        os.makedirs(self.base_dir, exist_ok=True)
        with open(marker, "w") as f:
            json.dump(dataclasses.asdict(self.cluster.config), f, indent=2)

    def _reopen_adapter(self, adapter_name: str, props: dict,
                        type_name: str, registry):
        """Rebuild an external-dataset adapter from its catalog record."""
        common = dict(
            format=props.get("format", "adm"),
            delimiter=props.get("delimiter", "|"),
            dataset_type=registry.resolve(type_name),
            type_registry=registry,
        )
        if adapter_name == "localfs":
            return LocalFSAdapter(props["path"], **common)
        if adapter_name == "hdfs":
            return HDFSAdapter(self.hdfs, props["path"], **common)
        raise MetadataError(f"unknown adapter {adapter_name}")

    # -- infrastructure -----------------------------------------------------------

    @property
    def hdfs(self) -> SimulatedHDFS:
        """The simulated HDFS namespace for external datasets."""
        if self._hdfs is None:
            self._hdfs = SimulatedHDFS(os.path.join(self.base_dir, "hdfs"))
        return self._hdfs

    def set_session_now(self, iso_datetime: str) -> None:
        """Pin current_datetime() (deterministic benchmarking)."""
        set_session_now(ADateTime.parse(iso_datetime))

    def close(self) -> None:
        self.cluster.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- execution -------------------------------------------------------------------

    def execute(self, text: str, *, language: str = "sqlpp",
                explain: bool = False,
                enable_index_access: bool = True,
                enable_cost_based: bool = True,
                trace: bool = False) -> Result:
        """Execute a script; returns the LAST statement's result (the
        common REPL convention).  Use :meth:`execute_all` for all of them.

        With ``trace=True`` each Result carries a
        :class:`~repro.observability.QueryTrace` (per-phase timings,
        fired rewrite rules, per-operator partition costs, metric
        deltas) as ``result.trace``.
        """
        results = self.execute_all(text, language=language,
                                   explain=explain,
                                   enable_index_access=enable_index_access,
                                   enable_cost_based=enable_cost_based,
                                   trace=trace)
        return results[-1] if results else Result("ddl", message="empty")

    def query(self, text: str, **kwargs) -> list:
        """Execute and return the last statement's rows."""
        return self.execute(text, **kwargs).rows

    def explain(self, text: str, *, language: str = "sqlpp",
                enable_index_access: bool = True,
                enable_cost_based: bool = True) -> ExplainResult:
        """Compile (but do not run) the LAST statement of ``text``.

        Returns an :class:`~repro.observability.ExplainResult`: the
        optimized Algebricks plan and the generated Hyracks job DAG as
        structured dicts and pretty-printed text, plus the fired-rule
        list and per-phase compile timings.  Works for queries and DML
        in both languages.
        """
        phases = []
        started = time.perf_counter()
        if language == "sqlpp":
            statements = parse_sqlpp(text)
        elif language == "aql":
            statements = parse_aql(text)
        else:
            raise AsterixError(f"unknown language {language!r}")
        phases.append({"name": "parse",
                       "duration_us": (time.perf_counter() - started) * 1e6})
        if not statements:
            raise AsterixError("nothing to explain")
        stmt = statements[-1]
        started = time.perf_counter()
        if isinstance(stmt, (ast.QueryStatement, ast.InsertStatement,
                             ast.DeleteStatement)):
            analyze_statement(stmt, self.metadata)
        phases.append({"name": "analyze",
                       "duration_us": (time.perf_counter() - started) * 1e6})
        translator = Translator(self.metadata)
        started = time.perf_counter()
        if isinstance(stmt, ast.QueryStatement):
            plan = translator.translate_query(stmt.query)
        elif isinstance(stmt, ast.InsertStatement):
            plan = translator.translate_insert(stmt)
        elif isinstance(stmt, ast.DeleteStatement):
            plan = translator.translate_delete(stmt)
        else:
            raise AsterixError(
                f"explain supports queries and DML, not "
                f"{type(stmt).__name__}"
            )
        phases.append({"name": "translate",
                       "duration_us": (time.perf_counter() - started) * 1e6})
        recorder = RewriteRecorder()
        started = time.perf_counter()
        optimized = optimize(plan, self.metadata,
                             enable_index_access=enable_index_access,
                             enable_cost_based=enable_cost_based,
                             recorder=recorder)
        phases.append({"name": "optimize",
                       "duration_us": (time.perf_counter() - started) * 1e6})
        started = time.perf_counter()
        job, _ = compile_plan(optimized, self.metadata,
                              self.cluster.num_partitions)
        phases.append({"name": "jobgen",
                       "duration_us": (time.perf_counter() - started) * 1e6})
        get_registry().counter("api.explains").inc()
        return ExplainResult(
            statement=text.strip(), language=language,
            logical_plan=plan_to_dict(optimized),
            logical_text=explain_plan(optimized),
            job=job_to_dict(job), job_text=job.describe(),
            fired_rules=recorder.fired_rules,
            rewrites=recorder.to_dict(),
            phases=phases,
            access_methods=access_methods(optimized),
        )

    def execute_all(self, text: str, *, language: str = "sqlpp",
                    explain: bool = False,
                    enable_index_access: bool = True,
                    enable_cost_based: bool = True,
                    trace: bool = False) -> list:
        parse_started = time.perf_counter()
        if language == "sqlpp":
            statements = parse_sqlpp(text)
            warnings = []
        elif language == "aql":
            statements = parse_aql(text)
            warnings = ["AQL is deprecated in favor of SQL++"]
        else:
            raise AsterixError(f"unknown language {language!r}")
        parse_us = (time.perf_counter() - parse_started) * 1e6
        results = []
        for stmt in statements:
            qtrace = None
            if trace:
                qtrace = QueryTrace(statement=text.strip(),
                                    language=language)
                # the parser handles the whole script at once; its cost
                # is recorded on every statement's trace, flagged as such
                span = Span("parse", attributes={
                    "scope": "script", "statements": len(statements),
                })
                span.duration_us = parse_us
                qtrace.phases.append(span)
            result = self._execute_one(stmt, explain, enable_index_access,
                                       qtrace,
                                       enable_cost_based=enable_cost_based)
            result.warnings.extend(warnings)
            results.append(result)
        return results

    # -- per-statement dispatch ---------------------------------------------------------

    def _execute_one(self, stmt, explain: bool,
                     enable_index_access: bool,
                     trace: QueryTrace | None = None, *,
                     enable_cost_based: bool = True) -> Result:
        registry = get_registry()
        registry.counter("api.statements").inc()
        translator = Translator(self.metadata)
        if isinstance(stmt, ast.LoadStatement):
            registry.counter("api.dml").inc()
            return self._run_load(stmt, trace)
        if isinstance(stmt, ast.InsertStatement):
            registry.counter("api.dml").inc()
            with maybe_phase(trace, "analyze"):
                analyze_statement(stmt, self.metadata)
            with maybe_phase(trace, "translate"):
                plan = translator.translate_insert(stmt)
            return self._run_plan(plan, "dml", explain,
                                  enable_index_access, trace,
                                  enable_cost_based=enable_cost_based)
        if isinstance(stmt, ast.DeleteStatement):
            registry.counter("api.dml").inc()
            with maybe_phase(trace, "analyze"):
                analyze_statement(stmt, self.metadata)
            with maybe_phase(trace, "translate"):
                plan = translator.translate_delete(stmt)
            return self._run_plan(plan, "dml", explain,
                                  enable_index_access, trace,
                                  enable_cost_based=enable_cost_based)
        if isinstance(stmt, ast.QueryStatement):
            registry.counter("api.queries").inc()
            with maybe_phase(trace, "analyze"):
                analyze_statement(stmt, self.metadata)
            with maybe_phase(trace, "translate"):
                plan = translator.translate_query(stmt.query)
            return self._run_plan(plan, "query", explain,
                                  enable_index_access, trace,
                                  enable_cost_based=enable_cost_based)
        # everything else is DDL against the catalog
        registry.counter("api.ddl").inc()
        if trace is not None:
            trace.kind = "ddl"
        with maybe_phase(trace, "execute",
                         statement=type(stmt).__name__):
            result = self._execute_ddl(stmt)
        result.trace = trace
        return result

    def _execute_ddl(self, stmt) -> Result:
        if isinstance(stmt, ast.CreateDataverse):
            self.metadata.create_dataverse(stmt.name, stmt.if_not_exists)
            return Result("ddl", message=f"dataverse {stmt.name} created")
        if isinstance(stmt, ast.UseDataverse):
            self.metadata.use_dataverse(stmt.name)
            return Result("ddl", message=f"using {stmt.name}")
        if isinstance(stmt, ast.CreateType):
            self.metadata.create_type(stmt)
            return Result("ddl", message=f"type {stmt.name} created")
        if isinstance(stmt, ast.CreateDataset):
            self.metadata.create_dataset(stmt)
            return Result("ddl", message=f"dataset {stmt.name} created")
        if isinstance(stmt, ast.CreateExternalDataset):
            adapter = self._make_adapter(stmt.adapter, stmt.properties,
                                         stmt.type_name)
            self.metadata.create_external_dataset(stmt, adapter)
            return Result("ddl",
                          message=f"external dataset {stmt.name} created")
        if isinstance(stmt, ast.CreateIndex):
            self.metadata.create_index(stmt)
            return Result("ddl", message=f"index {stmt.name} created")
        if isinstance(stmt, ast.DropStatement):
            self._drop(stmt)
            return Result("ddl", message=f"{stmt.kind} {stmt.name} dropped")
        raise AsterixError(f"unhandled statement {type(stmt).__name__}")

    def _drop(self, stmt: ast.DropStatement) -> None:
        if stmt.kind == "dataverse":
            self.metadata.drop_dataverse(stmt.name, stmt.if_exists)
        elif stmt.kind == "type":
            self.metadata.drop_type(stmt.name, stmt.if_exists)
        elif stmt.kind == "dataset":
            self.metadata.drop_dataset(stmt.name, stmt.if_exists)
        elif stmt.kind == "index":
            self.metadata.drop_index(stmt.dataset, stmt.name,
                                     stmt.if_exists)
        else:
            raise MetadataError(f"cannot drop {stmt.kind}")

    def _make_adapter(self, adapter_name: str, props: dict,
                      type_name: str):
        entry_type = None
        registry = self.metadata.type_registry(self.metadata.current)
        if type_name:
            entry_type = registry.resolve(type_name)
        common = dict(
            format=props.get("format", "adm"),
            delimiter=props.get("delimiter", "|"),
            dataset_type=entry_type,
            type_registry=registry,
        )
        if adapter_name == "localfs":
            return LocalFSAdapter(props["path"], **common)
        if adapter_name == "hdfs":
            return HDFSAdapter(self.hdfs, props["path"], **common)
        raise MetadataError(f"unknown adapter {adapter_name}")

    def _run_load(self, stmt: ast.LoadStatement,
                  trace: QueryTrace | None = None) -> Result:
        entry = self.metadata.dataset_entry(stmt.dataset)
        registry = self.metadata.type_registry(entry.dataverse)
        adapter = LocalFSAdapter(
            stmt.path, format=stmt.format,
            delimiter=stmt.properties.get("delimiter", "|"),
            dataset_type=registry.resolve(entry.type_name),
            type_registry=registry,
        )
        with maybe_phase(trace, "translate"):
            plan = Translator(self.metadata).translate_load(stmt, adapter)
        return self._run_plan(plan, "dml", False, True, trace)

    def _run_plan(self, plan, kind: str, explain: bool,
                  enable_index_access: bool,
                  trace: QueryTrace | None = None, *,
                  enable_cost_based: bool = True) -> Result:
        registry = get_registry()
        metrics_before = registry.snapshot() if trace is not None else None
        recorder = trace.rewrites if trace is not None else None
        with maybe_phase(trace, "optimize"):
            optimized = optimize(plan, self.metadata,
                                 enable_index_access=enable_index_access,
                                 enable_cost_based=enable_cost_based,
                                 recorder=recorder)
        plan_text = explain_plan(optimized)
        if trace is not None:
            trace.kind = kind
            trace.plan_text = plan_text
        if explain:
            return Result("explain", plan=plan_text, trace=trace)
        with maybe_phase(trace, "jobgen"):
            job, _ = compile_plan(optimized, self.metadata,
                                  self.cluster.num_partitions)
        with maybe_phase(trace, "execute") as span:
            job_result = self.cluster.run_job(job, span=span)
        profile = job_result.profile
        if trace is not None:
            trace.operators = [op.to_dict() for op in profile.operators]
            trace.simulated_us = profile.simulated_us
            trace.wall_seconds = profile.wall_seconds
            trace.metrics = registry.delta(metrics_before)
            trace.metrics_totals = {
                name: value
                for name, value in registry.snapshot().items()
                if not isinstance(value, dict)
            }
        # MISSING results are not serialized (SQL++ result semantics)
        from repro.adm import MISSING

        rows = [t[0] for t in job_result.tuples if t[0] is not MISSING]
        if kind == "dml":
            count = rows[0] if rows else 0
            return Result("dml", rows=rows, profile=job_result.profile,
                          plan=plan_text,
                          message=f"{count} record(s) processed",
                          trace=trace)
        return Result("query", rows=rows, profile=job_result.profile,
                      plan=plan_text, trace=trace)

    # -- maintenance ---------------------------------------------------------------------

    def flush_dataset(self, name: str) -> None:
        entry = self.metadata.dataset_entry(name)
        self.cluster.flush_dataset(entry.name)

    def checkpoint(self) -> None:
        self.cluster.checkpoint()


def connect(base_dir: str, config: ClusterConfig | None = None,
            injector=None) -> AsterixInstance:
    """Create (or open) an embedded instance under ``base_dir``."""
    return AsterixInstance(base_dir, config, injector=injector)
