"""The public face of the system: one embedded AsterixDB-like instance.

``AsterixInstance`` owns a simulated cluster, the metadata catalog, and
the full compile chain (parse -> translate -> optimize -> jobgen -> run).
Both query languages are served; AQL is accepted but flagged deprecated,
matching the paper ("We have now deprecated AQL in favor of SQL++").

    >>> db = AsterixInstance(tmpdir)
    >>> db.execute('CREATE TYPE UserType AS { id: int };')
    >>> db.execute('CREATE DATASET Users(UserType) PRIMARY KEY id;')
    >>> db.execute('INSERT INTO Users ({"id": 1, "name": "ann"});')
    >>> db.query('SELECT VALUE u.name FROM Users u;')
    ['ann']
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.adm.values import ADateTime
from repro.algebricks import compile_plan, explain as explain_plan, optimize
from repro.common.config import ClusterConfig
from repro.common.errors import AsterixError, MetadataError
from repro.external import HDFSAdapter, LocalFSAdapter, SimulatedHDFS
from repro.functions import set_session_now
from repro.hyracks import ClusterController
from repro.lang import core_ast as ast
from repro.lang.aql.parser import parse_aql
from repro.lang.sqlpp.parser import parse_sqlpp
from repro.lang.translator import Translator
from repro.metadata.catalog import MetadataManager


@dataclass
class Result:
    """Outcome of one statement."""

    kind: str                      # query | dml | ddl | explain
    rows: list = field(default_factory=list)
    message: str = ""
    profile: object = None         # JobProfile for query/dml
    plan: str = ""                 # optimized logical plan (explain)
    warnings: list = field(default_factory=list)

    def __iter__(self):
        return iter(self.rows)


class AsterixInstance:
    """An embedded Big Data Management System instance."""

    def __init__(self, base_dir: str, config: ClusterConfig | None = None):
        self.base_dir = base_dir
        self._hdfs: SimulatedHDFS | None = None
        marker = os.path.join(base_dir, "instance.json")
        reopening = os.path.exists(marker)
        if reopening:
            config = self._load_config(marker)
        self.cluster = ClusterController(os.path.join(base_dir, "cluster"),
                                         config)
        if reopening:
            self.metadata = MetadataManager.reopen(
                self.cluster, self._reopen_adapter)
        else:
            self.metadata = MetadataManager(self.cluster)
            self._save_config(marker)

    @staticmethod
    def _load_config(marker: str) -> ClusterConfig:
        import json

        from repro.common.config import CostModel, NodeConfig

        with open(marker) as f:
            data = json.load(f)
        return ClusterConfig(
            num_nodes=data["num_nodes"],
            partitions_per_node=data["partitions_per_node"],
            page_size=data["page_size"],
            frame_size=data["frame_size"],
            node=NodeConfig(**data["node"]),
            cost=CostModel(**data["cost"]),
        )

    def _save_config(self, marker: str) -> None:
        import dataclasses
        import json

        os.makedirs(self.base_dir, exist_ok=True)
        with open(marker, "w") as f:
            json.dump(dataclasses.asdict(self.cluster.config), f, indent=2)

    def _reopen_adapter(self, adapter_name: str, props: dict,
                        type_name: str, registry):
        """Rebuild an external-dataset adapter from its catalog record."""
        common = dict(
            format=props.get("format", "adm"),
            delimiter=props.get("delimiter", "|"),
            dataset_type=registry.resolve(type_name),
            type_registry=registry,
        )
        if adapter_name == "localfs":
            return LocalFSAdapter(props["path"], **common)
        if adapter_name == "hdfs":
            return HDFSAdapter(self.hdfs, props["path"], **common)
        raise MetadataError(f"unknown adapter {adapter_name}")

    # -- infrastructure -----------------------------------------------------------

    @property
    def hdfs(self) -> SimulatedHDFS:
        """The simulated HDFS namespace for external datasets."""
        if self._hdfs is None:
            self._hdfs = SimulatedHDFS(os.path.join(self.base_dir, "hdfs"))
        return self._hdfs

    def set_session_now(self, iso_datetime: str) -> None:
        """Pin current_datetime() (deterministic benchmarking)."""
        set_session_now(ADateTime.parse(iso_datetime))

    def close(self) -> None:
        self.cluster.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- execution -------------------------------------------------------------------

    def execute(self, text: str, *, language: str = "sqlpp",
                explain: bool = False,
                enable_index_access: bool = True) -> Result:
        """Execute a script; returns the LAST statement's result (the
        common REPL convention).  Use :meth:`execute_all` for all of them.
        """
        results = self.execute_all(text, language=language,
                                   explain=explain,
                                   enable_index_access=enable_index_access)
        return results[-1] if results else Result("ddl", message="empty")

    def query(self, text: str, **kwargs) -> list:
        """Execute and return the last statement's rows."""
        return self.execute(text, **kwargs).rows

    def execute_all(self, text: str, *, language: str = "sqlpp",
                    explain: bool = False,
                    enable_index_access: bool = True) -> list:
        if language == "sqlpp":
            statements = parse_sqlpp(text)
            warnings = []
        elif language == "aql":
            statements = parse_aql(text)
            warnings = ["AQL is deprecated in favor of SQL++"]
        else:
            raise AsterixError(f"unknown language {language!r}")
        results = []
        for stmt in statements:
            result = self._execute_one(stmt, explain, enable_index_access)
            result.warnings.extend(warnings)
            results.append(result)
        return results

    # -- per-statement dispatch ---------------------------------------------------------

    def _execute_one(self, stmt, explain: bool,
                     enable_index_access: bool) -> Result:
        if isinstance(stmt, ast.CreateDataverse):
            self.metadata.create_dataverse(stmt.name, stmt.if_not_exists)
            return Result("ddl", message=f"dataverse {stmt.name} created")
        if isinstance(stmt, ast.UseDataverse):
            self.metadata.use_dataverse(stmt.name)
            return Result("ddl", message=f"using {stmt.name}")
        if isinstance(stmt, ast.CreateType):
            self.metadata.create_type(stmt)
            return Result("ddl", message=f"type {stmt.name} created")
        if isinstance(stmt, ast.CreateDataset):
            self.metadata.create_dataset(stmt)
            return Result("ddl", message=f"dataset {stmt.name} created")
        if isinstance(stmt, ast.CreateExternalDataset):
            adapter = self._make_adapter(stmt.adapter, stmt.properties,
                                         stmt.type_name)
            self.metadata.create_external_dataset(stmt, adapter)
            return Result("ddl",
                          message=f"external dataset {stmt.name} created")
        if isinstance(stmt, ast.CreateIndex):
            self.metadata.create_index(stmt)
            return Result("ddl", message=f"index {stmt.name} created")
        if isinstance(stmt, ast.DropStatement):
            self._drop(stmt)
            return Result("ddl", message=f"{stmt.kind} {stmt.name} dropped")
        if isinstance(stmt, ast.LoadStatement):
            return self._run_load(stmt)
        if isinstance(stmt, ast.InsertStatement):
            return self._run_plan(
                Translator(self.metadata).translate_insert(stmt),
                "dml", explain, enable_index_access,
            )
        if isinstance(stmt, ast.DeleteStatement):
            return self._run_plan(
                Translator(self.metadata).translate_delete(stmt),
                "dml", explain, enable_index_access,
            )
        if isinstance(stmt, ast.QueryStatement):
            return self._run_plan(
                Translator(self.metadata).translate_query(stmt.query),
                "query", explain, enable_index_access,
            )
        raise AsterixError(f"unhandled statement {type(stmt).__name__}")

    def _drop(self, stmt: ast.DropStatement) -> None:
        if stmt.kind == "dataverse":
            self.metadata.drop_dataverse(stmt.name, stmt.if_exists)
        elif stmt.kind == "type":
            self.metadata.drop_type(stmt.name, stmt.if_exists)
        elif stmt.kind == "dataset":
            self.metadata.drop_dataset(stmt.name, stmt.if_exists)
        elif stmt.kind == "index":
            self.metadata.drop_index(stmt.dataset, stmt.name,
                                     stmt.if_exists)
        else:
            raise MetadataError(f"cannot drop {stmt.kind}")

    def _make_adapter(self, adapter_name: str, props: dict,
                      type_name: str):
        entry_type = None
        registry = self.metadata.type_registry(self.metadata.current)
        if type_name:
            entry_type = registry.resolve(type_name)
        common = dict(
            format=props.get("format", "adm"),
            delimiter=props.get("delimiter", "|"),
            dataset_type=entry_type,
            type_registry=registry,
        )
        if adapter_name == "localfs":
            return LocalFSAdapter(props["path"], **common)
        if adapter_name == "hdfs":
            return HDFSAdapter(self.hdfs, props["path"], **common)
        raise MetadataError(f"unknown adapter {adapter_name}")

    def _run_load(self, stmt: ast.LoadStatement) -> Result:
        entry = self.metadata.dataset_entry(stmt.dataset)
        registry = self.metadata.type_registry(entry.dataverse)
        adapter = LocalFSAdapter(
            stmt.path, format=stmt.format,
            delimiter=stmt.properties.get("delimiter", "|"),
            dataset_type=registry.resolve(entry.type_name),
            type_registry=registry,
        )
        plan = Translator(self.metadata).translate_load(stmt, adapter)
        return self._run_plan(plan, "dml", False, True)

    def _run_plan(self, plan, kind: str, explain: bool,
                  enable_index_access: bool) -> Result:
        optimized = optimize(plan, self.metadata,
                             enable_index_access=enable_index_access)
        plan_text = explain_plan(optimized)
        if explain:
            return Result("explain", plan=plan_text)
        job, _ = compile_plan(optimized, self.metadata,
                              self.cluster.num_partitions)
        job_result = self.cluster.run_job(job)
        # MISSING results are not serialized (SQL++ result semantics)
        from repro.adm import MISSING

        rows = [t[0] for t in job_result.tuples if t[0] is not MISSING]
        if kind == "dml":
            count = rows[0] if rows else 0
            return Result("dml", rows=rows, profile=job_result.profile,
                          plan=plan_text,
                          message=f"{count} record(s) processed")
        return Result("query", rows=rows, profile=job_result.profile,
                      plan=plan_text)

    # -- maintenance ---------------------------------------------------------------------

    def flush_dataset(self, name: str) -> None:
        entry = self.metadata.dataset_entry(name)
        self.cluster.flush_dataset(entry.name)

    def checkpoint(self) -> None:
        self.cluster.checkpoint()


def connect(base_dir: str,
            config: ClusterConfig | None = None) -> AsterixInstance:
    """Create (or open) an embedded instance under ``base_dir``."""
    return AsterixInstance(base_dir, config)
