"""The metadata catalog: dataverses, types, datasets, indexes.

AsterixDB stores its catalog in system datasets inside a ``Metadata``
dataverse; so does this reproduction — every DDL operation updates both
the in-memory maps (the fast path the compiler reads) and the mirrored
``Metadata.*`` datasets, so ``SELECT * FROM Metadata.Dataset`` style
introspection works through the ordinary query path.

The manager implements the optimizer's
:class:`~repro.algebricks.rules.MetadataView` protocol plus what the
translator needs (``dataset_exists``, ``external_adapter``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adm.types import (
    Field,
    MultisetType,
    ObjectType,
    OrderedListType,
    TypeReference,
    TypeRegistry,
)
from repro.algebricks.rules import MetadataView
from repro.common.errors import DuplicateError, MetadataError, UnknownEntityError
from repro.lang import core_ast as ast
from repro.storage.dataset_storage import SecondaryIndexSpec

METADATA_DATAVERSE = "Metadata"
DEFAULT_DATAVERSE = "Default"


@dataclass
class DatasetEntry:
    name: str                      # qualified: dataverse.name
    dataverse: str
    type_name: str
    pk_fields: tuple
    kind: str = "internal"         # internal | external
    adapter: object = None         # external only
    indexes: dict = field(default_factory=dict)   # name -> spec


@dataclass
class Dataverse:
    name: str
    types: TypeRegistry = field(default_factory=TypeRegistry)
    datasets: dict = field(default_factory=dict)


class MetadataManager(MetadataView):
    """The catalog, mirrored into Metadata.* system datasets."""

    SYSTEM_DATASETS = (
        ("Metadata.Dataverse", ("DataverseName",)),
        ("Metadata.Datatype", ("DataverseName", "DatatypeName")),
        ("Metadata.Dataset", ("DataverseName", "DatasetName")),
        ("Metadata.Index", ("DataverseName", "DatasetName", "IndexName")),
    )

    def __init__(self, cluster):
        self.cluster = cluster
        self.dataverses: dict[str, Dataverse] = {}
        self.current = DEFAULT_DATAVERSE
        for name, pk in self.SYSTEM_DATASETS:
            cluster.create_dataset(name, pk)
        self._bootstrap()

    def _bootstrap(self):
        self._register_system_entries()
        self._mirror_dataverse(METADATA_DATAVERSE)
        self.create_dataverse(DEFAULT_DATAVERSE, if_not_exists=True)

    def _register_system_entries(self):
        meta = Dataverse(METADATA_DATAVERSE)
        self.dataverses[METADATA_DATAVERSE] = meta
        for qualified, pk in self.SYSTEM_DATASETS:
            local = qualified.split(".", 1)[1]
            meta.datasets[local] = DatasetEntry(
                qualified, METADATA_DATAVERSE, "any", tuple(pk)
            )

    # -- restart ------------------------------------------------------------------

    @classmethod
    def reopen(cls, cluster, adapter_factory) -> "MetadataManager":
        """Rebuild the catalog after a restart.

        The catalog *is* data (the Metadata.* datasets), so restart is
        bootstrapped recovery: (1) reopen the system datasets from their
        LSM manifests and replay the WAL into them; (2) read the catalog
        records back; (3) reopen every user dataset they describe (with
        its indexes and type validator); (4) replay the WAL again, now
        reaching the user partitions.  Replay is idempotent, so the
        double pass is safe.

        ``adapter_factory(adapter_name, properties, type_name,
        type_registry)`` rebuilds external-dataset adapters.
        """
        mgr = cls.__new__(cls)
        mgr.cluster = cluster
        mgr.dataverses = {}
        mgr.current = DEFAULT_DATAVERSE

        # phase 1: the catalog recovers itself
        for qualified, pk in cls.SYSTEM_DATASETS:
            cluster.recover_dataset(qualified, pk)
        for node in cluster.nodes:
            node.seed_txn_ids_from_log()
            node.replay_wal()
        mgr._register_system_entries()

        # phase 2: read the catalog back
        from repro.lang.sqlpp.parser import SQLPPParser

        for _, record in cluster.scan_dataset("Metadata.Dataverse"):
            name = record["DataverseName"]
            if name not in mgr.dataverses:
                mgr.dataverses[name] = Dataverse(name)
        for _, record in cluster.scan_dataset("Metadata.Datatype"):
            dv = mgr.dataverses[record["DataverseName"]]
            closed = "" if record.get("IsOpen", True) else "CLOSED "
            ddl = (f"CREATE TYPE `{record['DatatypeName']}` AS "
                   f"{closed}{record['Definition']};")
            stmt = SQLPPParser(ddl).parse_statements()[0]
            dv.types.add(mgr._build_type(record["DatatypeName"],
                                         stmt.body))

        indexes_by_dataset: dict[tuple, list] = {}
        for _, record in cluster.scan_dataset("Metadata.Index"):
            key = (record["DataverseName"], record["DatasetName"])
            indexes_by_dataset.setdefault(key, []).append(
                SecondaryIndexSpec(
                    record["IndexName"],
                    record["IndexStructure"].lower(),
                    tuple(record["SearchKey"]),
                    record.get("GramLength", 3),
                    array_path=record.get("UnnestList", [""])[0],
                )
            )

        # phase 3: reopen user datasets
        for _, record in cluster.scan_dataset("Metadata.Dataset"):
            dv_name = record["DataverseName"]
            local = record["DatasetName"]
            dv = mgr.dataverses[dv_name]
            qualified = f"{dv_name}.{local}"
            if record["DatasetType"] == "EXTERNAL":
                adapter = adapter_factory(
                    record["Adapter"], record["AdapterProperties"],
                    record["DatatypeName"], dv.types,
                )
                dv.datasets[local] = DatasetEntry(
                    qualified, dv_name, record["DatatypeName"], (),
                    kind="external", adapter=adapter,
                )
                continue
            specs = indexes_by_dataset.get((dv_name, local), [])
            entry = DatasetEntry(
                qualified, dv_name, record["DatatypeName"],
                tuple(record["PrimaryKey"]),
                indexes={s.name: s for s in specs},
            )
            cluster.recover_dataset(qualified, entry.pk_fields, specs)
            mgr._set_validator(
                qualified,
                mgr._validator(dv.types, record["DatatypeName"]),
            )
            dv.datasets[local] = entry

        # phase 4: replay reaches the user partitions now
        for node in cluster.nodes:
            node.replay_wal()
        return mgr

    # -- naming ------------------------------------------------------------------

    def qualify(self, name: str) -> str:
        """Resolve a possibly-dotted name against the current dataverse."""
        if "." in name:
            return name
        return f"{self.current}.{name}"

    def _split(self, name: str) -> tuple[str, str]:
        qualified = self.qualify(name)
        dv, _, local = qualified.partition(".")
        return dv, local

    def _dataverse(self, name: str) -> Dataverse:
        try:
            return self.dataverses[name]
        except KeyError:
            raise UnknownEntityError(f"unknown dataverse {name}") from None

    # -- dataverse DDL ---------------------------------------------------------------

    def create_dataverse(self, name: str,
                         if_not_exists: bool = False) -> None:
        if name in self.dataverses:
            if if_not_exists:
                return
            raise DuplicateError(f"dataverse {name} exists")
        self.dataverses[name] = Dataverse(name)
        self._mirror_dataverse(name)

    def use_dataverse(self, name: str) -> None:
        self._dataverse(name)
        self.current = name

    def drop_dataverse(self, name: str, if_exists: bool = False) -> None:
        if name == METADATA_DATAVERSE:
            raise MetadataError("cannot drop the Metadata dataverse")
        dv = self.dataverses.get(name)
        if dv is None:
            if if_exists:
                return
            raise UnknownEntityError(f"unknown dataverse {name}")
        for entry in list(dv.datasets.values()):
            self.drop_dataset(entry.name)
        del self.dataverses[name]
        self.cluster.delete_record("Metadata.Dataverse", (name,))
        if self.current == name:
            self.current = DEFAULT_DATAVERSE

    # -- type DDL ------------------------------------------------------------------------

    def create_type(self, stmt: ast.CreateType) -> None:
        dv_name, local = self._split(stmt.name)
        dv = self._dataverse(dv_name)
        if local in dv.types:
            if stmt.if_not_exists:
                return
            raise DuplicateError(f"type {stmt.name} exists")
        dtype = self._build_type(local, stmt.body)
        dv.types.add(dtype)
        self.cluster.insert_record("Metadata.Datatype", {
            "DataverseName": dv_name,
            "DatatypeName": local,
            "Derived": repr(dtype),
            # re-parseable DDL body: instance restart re-executes this
            "Definition": render_type_ddl(stmt.body),
            "IsOpen": stmt.body.is_open,
        })

    def _build_type(self, name: str, body: ast.TypeExpr):
        if body.kind == "named":
            return TypeReference(body.name)
        if body.kind == "ordered":
            return OrderedListType(self._build_type("", body.item))
        if body.kind == "multiset":
            return MultisetType(self._build_type("", body.item))
        fields = tuple(
            Field(f.name, self._build_type("", f.type_name), f.optional)
            for f in body.fields
        )
        return ObjectType(name or "<anon>", fields, is_open=body.is_open)

    def drop_type(self, name: str, if_exists: bool = False) -> None:
        dv_name, local = self._split(name)
        dv = self._dataverse(dv_name)
        if local not in dv.types:
            if if_exists:
                return
            raise UnknownEntityError(f"unknown type {name}")
        dv.types.remove(local)
        self.cluster.delete_record("Metadata.Datatype", (dv_name, local))

    def type_registry(self, dataverse: str) -> TypeRegistry:
        return self._dataverse(dataverse).types

    # -- dataset DDL -----------------------------------------------------------------------

    def create_dataset(self, stmt: ast.CreateDataset) -> DatasetEntry:
        dv_name, local = self._split(stmt.name)
        dv = self._dataverse(dv_name)
        if local in dv.datasets:
            if stmt.if_not_exists:
                return dv.datasets[local]
            raise DuplicateError(f"dataset {stmt.name} exists")
        registry = dv.types
        registry.resolve(stmt.type_name)   # must exist
        qualified = f"{dv_name}.{local}"
        entry = DatasetEntry(qualified, dv_name, stmt.type_name,
                             tuple(stmt.primary_key))
        validator = self._validator(registry, stmt.type_name)
        self.cluster.create_dataset(qualified, entry.pk_fields)
        self._set_validator(qualified, validator)
        dv.datasets[local] = entry
        self.cluster.insert_record("Metadata.Dataset", {
            "DataverseName": dv_name,
            "DatasetName": local,
            "DatatypeName": stmt.type_name,
            "DatasetType": "INTERNAL",
            "PrimaryKey": list(entry.pk_fields),
        })
        return entry

    def create_external_dataset(self, stmt: ast.CreateExternalDataset,
                                adapter) -> DatasetEntry:
        dv_name, local = self._split(stmt.name)
        dv = self._dataverse(dv_name)
        if local in dv.datasets:
            raise DuplicateError(f"dataset {stmt.name} exists")
        dv.types.resolve(stmt.type_name)
        qualified = f"{dv_name}.{local}"
        entry = DatasetEntry(qualified, dv_name, stmt.type_name, (),
                             kind="external", adapter=adapter)
        dv.datasets[local] = entry
        self.cluster.insert_record("Metadata.Dataset", {
            "DataverseName": dv_name,
            "DatasetName": local,
            "DatatypeName": stmt.type_name,
            "DatasetType": "EXTERNAL",
            "PrimaryKey": [],
            # adapter config, so restart can rebuild the adapter
            "Adapter": stmt.adapter,
            "AdapterProperties": dict(stmt.properties),
        })
        return entry

    def _validator(self, registry: TypeRegistry, type_name: str):
        def validate(record):
            registry.validate(record, type_name)

        return validate

    def _set_validator(self, qualified: str, validator) -> None:
        for p in range(self.cluster.num_partitions):
            node = self.cluster.node_of_partition(p)
            node.get_partition(qualified, p).validator = validator

    def drop_dataset(self, name: str, if_exists: bool = False) -> None:
        dv_name, local = self._split(name)
        dv = self._dataverse(dv_name)
        entry = dv.datasets.get(local)
        if entry is None:
            if if_exists:
                return
            raise UnknownEntityError(f"unknown dataset {name}")
        if entry.kind == "internal":
            self.cluster.drop_dataset(entry.name)
        del dv.datasets[local]
        self.cluster.delete_record("Metadata.Dataset", (dv_name, local))

    def create_index(self, stmt: ast.CreateIndex) -> None:
        entry = self.dataset_entry(stmt.dataset)
        if entry.kind != "internal":
            raise MetadataError("cannot index an external dataset")
        if stmt.name in entry.indexes:
            if stmt.if_not_exists:
                return
            raise DuplicateError(f"index {stmt.name} exists")
        spec = SecondaryIndexSpec(stmt.name, stmt.kind,
                                  tuple(stmt.fields), stmt.gram_length,
                                  array_path=stmt.array_path or "")
        self.cluster.create_index(entry.name, spec)
        entry.indexes[stmt.name] = spec
        dv_name, local = self._split(stmt.dataset)
        self.cluster.insert_record("Metadata.Index", {
            "DataverseName": dv_name,
            "DatasetName": local,
            "IndexName": stmt.name,
            "IndexStructure": stmt.kind.upper(),
            "SearchKey": list(stmt.fields),
            "GramLength": stmt.gram_length,
            "UnnestList": [spec.array_path],
        })

    def drop_index(self, dataset: str, index_name: str,
                   if_exists: bool = False) -> None:
        entry = self.dataset_entry(dataset)
        if index_name not in entry.indexes:
            if if_exists:
                return
            raise UnknownEntityError(f"unknown index {index_name}")
        self.cluster.drop_index(entry.name, index_name)
        del entry.indexes[index_name]
        dv_name, local = self._split(dataset)
        self.cluster.delete_record("Metadata.Index",
                                   (dv_name, local, index_name))

    # -- lookups ------------------------------------------------------------------------------

    def dataset_entry(self, name: str) -> DatasetEntry:
        dv_name, local = self._split(name)
        dv = self._dataverse(dv_name)
        try:
            return dv.datasets[local]
        except KeyError:
            raise UnknownEntityError(f"unknown dataset {name}") from None

    def dataset_exists(self, name: str) -> bool:
        try:
            self.dataset_entry(name)
            return True
        except UnknownEntityError:
            return False

    def dataset_type(self, name: str) -> ObjectType:
        entry = self.dataset_entry(name)
        return self.type_registry(entry.dataverse).resolve(entry.type_name)

    # -- MetadataView protocol (the optimizer's lens) ------------------------------------------

    def pk_fields(self, dataset: str) -> tuple:
        return self.dataset_entry(dataset).pk_fields

    def secondary_indexes(self, dataset: str) -> list:
        return list(self.dataset_entry(dataset).indexes.values())

    def is_external(self, dataset: str) -> bool:
        return self.dataset_entry(dataset).kind == "external"

    def external_adapter(self, dataset: str):
        return self.dataset_entry(dataset).adapter

    def dataset_statistics(self, dataset: str):
        """Dataset-level statistics rollup for the cost-based optimizer:
        the per-partition primary-index synopses (harvested at LSM
        flush/merge time and recovered from the manifests after restart)
        merged into one :class:`~repro.storage.lsm.synopsis
        .ComponentSynopsis`.  Returns None for external datasets or when
        no statistics exist yet.

        The merge is cheap (a few dict folds per field) but not free, so
        rollups are cached against a fingerprint of each partition's
        component state; any flush, merge, or memory-component write
        invalidates it."""
        try:
            entry = self.dataset_entry(dataset)
        except UnknownEntityError:
            return None
        if entry.kind != "internal":
            return None
        qualified = entry.name
        versions, partitions = [], []
        try:
            for p in range(self.cluster.num_partitions):
                node = self.cluster.node_of_partition(p)
                storage = node.get_partition(qualified, p)
                versions.append(storage.statistics_version())
                partitions.append(storage)
        except (KeyError, AttributeError):
            return None
        cache = getattr(self, "_stats_cache", None)
        if cache is None:
            cache = self._stats_cache = {}
        key = tuple(versions)
        cached = cache.get(qualified)
        if cached is not None and cached[0] == key:
            return cached[1]
        from repro.storage.lsm.synopsis import ComponentSynopsis

        rollup = ComponentSynopsis.merge(
            s.statistics() for s in partitions)
        cache[qualified] = (key, rollup)
        return rollup

    # -- mirrors ----------------------------------------------------------------------------------

    def _mirror_dataverse(self, name: str) -> None:
        self.cluster.insert_record("Metadata.Dataverse",
                                   {"DataverseName": name})


def render_type_ddl(body: ast.TypeExpr) -> str:
    """Pretty-print a TypeExpr back to CREATE TYPE body syntax (the
    inverse of the parser; instance restart re-parses it)."""
    if body.kind == "named":
        return body.name
    if body.kind == "ordered":
        return f"[{render_type_ddl(body.item)}]"
    if body.kind == "multiset":
        return f"{{{{{render_type_ddl(body.item)}}}}}"
    fields = ", ".join(
        f"`{f.name}`: {render_type_ddl(f.type_name)}"
        + ("?" if f.optional else "")
        for f in body.fields
    )
    return "{ " + fields + " }"
