"""Metadata catalog (mirrored into Metadata.* system datasets)."""

from repro.metadata.catalog import (
    DatasetEntry,
    Dataverse,
    MetadataManager,
)

__all__ = ["DatasetEntry", "Dataverse", "MetadataManager"]
