"""Big Active Data: repetitive channels, brokers, subscriptions."""

from repro.bad.channels import (
    BADExtension,
    Broker,
    Channel,
    Delivery,
    Subscription,
)

__all__ = [
    "BADExtension",
    "Broker",
    "Channel",
    "Delivery",
    "Subscription",
]
