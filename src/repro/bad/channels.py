"""BAD — Big Active Data: "data pub/sub" (paper §IV, §VII, ref [17]).

The BAD project extended AsterixDB "with features that might be roughly
characterized as 'data pub/sub'": *repetitive channels* are parameterized
queries re-executed on a schedule, with results delivered to *brokers* on
behalf of *subscribers*.  This module is that extension over the
reproduction's query engine:

* ``CREATE BROKER`` -> :meth:`BADExtension.create_broker`
* ``CREATE REPETITIVE CHANNEL ch(params) { query }`` ->
  :meth:`BADExtension.create_channel`
* ``SUBSCRIBE TO ch(args) ON broker`` -> :meth:`BADExtension.subscribe`

Time is simulated: :meth:`BADExtension.tick` advances one period and
executes every due channel once per *distinct* parameter binding (the BAD
papers' key optimization — N subscribers with the same parameters share
one execution), delivering fresh results to each subscription's broker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.adm.parser import format_adm
from repro.common.errors import AsterixError, DuplicateError, UnknownEntityError


@dataclass
class Delivery:
    """One result delivery to a broker."""

    channel: str
    subscription_id: int
    execution_time: int           # tick number
    results: list


@dataclass
class Broker:
    """A result-delivery endpoint (in real BAD, an HTTP callback)."""

    name: str
    deliveries: list = field(default_factory=list)

    def deliver(self, delivery: Delivery) -> None:
        self.deliveries.append(delivery)

    def drain(self) -> list:
        out, self.deliveries = self.deliveries, []
        return out


@dataclass
class Subscription:
    subscription_id: int
    channel: str
    broker: str
    params: tuple


@dataclass
class Channel:
    """A repetitive channel: a parameterized query run every ``period``
    ticks."""

    name: str
    param_names: tuple
    query_template: str           # SQL++ with $param placeholders
    period: int = 1
    executions: int = 0
    last_run_tick: int = -1

    def bind(self, params: tuple) -> str:
        if len(params) != len(self.param_names):
            raise AsterixError(
                f"channel {self.name} takes {len(self.param_names)} "
                f"parameter(s), got {len(params)}"
            )
        text = self.query_template
        for name, value in zip(self.param_names, params):
            text = text.replace(f"${name}", _literal(value))
        return text


def _literal(value) -> str:
    """Render a parameter value as a SQL++ literal."""
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    return format_adm(value)


class BADExtension:
    """The Big Active Data layer over an AsterixInstance."""

    def __init__(self, instance):
        self.instance = instance
        self.brokers: dict[str, Broker] = {}
        self.channels: dict[str, Channel] = {}
        self.subscriptions: dict[int, Subscription] = {}
        self._sub_ids = itertools.count(1)
        self.clock = 0
        self.shared_executions_saved = 0

    # -- DDL-ish API ---------------------------------------------------------

    def create_broker(self, name: str) -> Broker:
        if name in self.brokers:
            raise DuplicateError(f"broker {name} exists")
        broker = Broker(name)
        self.brokers[name] = broker
        return broker

    def create_channel(self, name: str, param_names, query_template: str,
                       period: int = 1) -> Channel:
        if name in self.channels:
            raise DuplicateError(f"channel {name} exists")
        channel = Channel(name, tuple(param_names), query_template, period)
        self.channels[name] = channel
        return channel

    def drop_channel(self, name: str) -> None:
        if name not in self.channels:
            raise UnknownEntityError(f"no such channel {name}")
        del self.channels[name]
        for sid in [s for s, sub in self.subscriptions.items()
                    if sub.channel == name]:
            del self.subscriptions[sid]

    def subscribe(self, channel: str, broker: str, *params) -> int:
        if channel not in self.channels:
            raise UnknownEntityError(f"no such channel {channel}")
        if broker not in self.brokers:
            raise UnknownEntityError(f"no such broker {broker}")
        self.channels[channel].bind(params)   # arity check
        sid = next(self._sub_ids)
        self.subscriptions[sid] = Subscription(sid, channel, broker,
                                               tuple(params))
        return sid

    def unsubscribe(self, subscription_id: int) -> None:
        self.subscriptions.pop(subscription_id, None)

    # -- execution -------------------------------------------------------------

    def tick(self) -> int:
        """Advance the clock one tick; run every due channel.  Returns the
        number of channel executions performed."""
        self.clock += 1
        executions = 0
        for channel in self.channels.values():
            due = (self.clock - max(channel.last_run_tick, 0)) >= \
                channel.period or channel.last_run_tick < 0
            if due:
                executions += self.run_channel(channel.name)
        return executions

    def run_channel(self, name: str) -> int:
        """Execute one channel now: one query per distinct parameter
        binding, fanned out to all subscriptions sharing it."""
        channel = self.channels[name]
        subs = [s for s in self.subscriptions.values()
                if s.channel == name]
        by_params: dict[tuple, list] = {}
        for sub in subs:
            by_params.setdefault(sub.params, []).append(sub)
        executions = 0
        for params, sharing in by_params.items():
            rows = self.instance.query(channel.bind(params))
            executions += 1
            self.shared_executions_saved += len(sharing) - 1
            for sub in sharing:
                self.brokers[sub.broker].deliver(
                    Delivery(name, sub.subscription_id, self.clock, rows)
                )
        channel.executions += executions
        channel.last_run_tick = self.clock
        return executions
