"""Deterministic TPC-CH(2)-style data: orders with nested orderlines.

The aconitum study (ROADMAP item 2) benchmarks AsterixDB on CH-benCHmark
queries whose defining feature is predicates on fields *inside* the
``o_orderline`` array — the workload multi-valued (UNNEST) indexes exist
for.  This generator reproduces that shape, not the full TPC-CH schema:
warehouses, customers skewed across warehouses, items, and orders whose
orderlines nest the delivery day, item id, quantity, and amount.

Everything is seeded (per-table sub-seeds, gleambook-style) so tests and
benchmarks see identical data; ``scale`` is the warehouse count and every
table's cardinality derives from it.  Delivery days are plain ints (days
since an epoch) so range predicates stay literal in SQL++.
"""

from __future__ import annotations

import random

#: Per-warehouse cardinalities at scale=1 (downscaled TPC-C ratios).
CUSTOMERS_PER_WAREHOUSE = 30
ORDERS_PER_WAREHOUSE = 100
ITEM_COUNT = 100

#: Delivery days span this closed range (days since the benchmark epoch);
#: uniform, so a predicate ``ol_delivery_d < cutoff`` has selectivity
#: ~ (cutoff - DELIVERY_DAY_LO) / (DELIVERY_DAY_HI - DELIVERY_DAY_LO).
DELIVERY_DAY_LO = 1000
DELIVERY_DAY_HI = 3000

_DISTRICTS_PER_WAREHOUSE = 10


class TPCCHGenerator:
    """Seeded TPC-CH-style generator; ``scale`` = number of warehouses."""

    def __init__(self, seed: int = 42, scale: int = 1):
        self.seed = seed
        self.scale = max(1, scale)

    @property
    def num_warehouses(self) -> int:
        return self.scale

    @property
    def num_customers(self) -> int:
        return self.scale * CUSTOMERS_PER_WAREHOUSE

    @property
    def num_orders(self) -> int:
        return self.scale * ORDERS_PER_WAREHOUSE

    def warehouses(self):
        rng = random.Random(self.seed)
        for w in range(1, self.num_warehouses + 1):
            yield {
                "w_id": w,
                "w_name": f"W{w:03d}",
                "w_state": rng.choice(["CA", "WA", "OR", "NV", "AZ"]),
                "w_tax": round(rng.uniform(0.0, 0.2), 4),
            }

    def items(self):
        rng = random.Random(self.seed + 1)
        for i in range(1, ITEM_COUNT + 1):
            yield {
                "i_id": i,
                "i_name": f"item-{i:04d}",
                "i_price": round(rng.uniform(1.0, 100.0), 2),
            }

    def customers(self):
        rng = random.Random(self.seed + 2)
        for c in range(1, self.num_customers + 1):
            yield {
                "c_id": c,
                "c_w_id": 1 + (c - 1) % self.num_warehouses,
                "c_d_id": rng.randint(1, _DISTRICTS_PER_WAREHOUSE),
                "c_last": f"CUST{c:05d}",
                "c_balance": round(rng.uniform(-500.0, 5000.0), 2),
            }

    def orders(self):
        """Orders with the nested ``o_orderline`` array (1-10 lines).

        A small fraction of orders exercises the edge shapes array-index
        maintenance must handle: empty orderline arrays and entirely
        missing ``o_orderline`` fields."""
        rng = random.Random(self.seed + 3)
        for o in range(1, self.num_orders + 1):
            record = {
                "o_id": o,
                "o_w_id": 1 + (o - 1) % self.num_warehouses,
                "o_d_id": rng.randint(1, _DISTRICTS_PER_WAREHOUSE),
                "o_c_id": rng.randint(1, self.num_customers),
                "o_entry_d": rng.randint(DELIVERY_DAY_LO - 90,
                                         DELIVERY_DAY_LO),
            }
            shape = rng.random()
            if shape < 0.02:
                pass                        # no o_orderline field at all
            elif shape < 0.05:
                record["o_orderline"] = []  # present but empty
            else:
                record["o_orderline"] = [
                    {
                        "ol_number": n,
                        "ol_i_id": rng.randint(1, ITEM_COUNT),
                        "ol_delivery_d": rng.randint(DELIVERY_DAY_LO,
                                                     DELIVERY_DAY_HI),
                        "ol_quantity": rng.randint(1, 10),
                        "ol_amount": round(rng.uniform(1.0, 1000.0), 2),
                    }
                    for n in range(1, rng.randint(1, 10) + 1)
                ]
            record["o_ol_cnt"] = len(record.get("o_orderline") or ())
            yield record

    def delivery_day_cutoff(self, selectivity: float) -> int:
        """The ``ol_delivery_d < cutoff`` bound whose *orderline*
        selectivity is approximately ``selectivity`` (days are uniform)."""
        span = DELIVERY_DAY_HI - DELIVERY_DAY_LO
        return DELIVERY_DAY_LO + max(0, min(span + 1,
                                            round(span * selectivity)))
