"""Seeded synthetic data generators (Gleambook social network, access
logs, multitasking-study activity logs)."""

from repro.datagen.gleambook import GleambookGenerator, activity_log

__all__ = ["GleambookGenerator", "activity_log"]
