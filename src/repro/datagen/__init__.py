"""Seeded synthetic data generators (Gleambook social network, access
logs, multitasking-study activity logs, TPC-CH orders/orderlines)."""

from repro.datagen.gleambook import GleambookGenerator, activity_log
from repro.datagen.tpcch import TPCCHGenerator

__all__ = ["GleambookGenerator", "TPCCHGenerator", "activity_log"]
