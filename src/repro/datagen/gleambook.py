"""Deterministic synthetic data: the Gleambook social network of Fig. 3.

DESIGN.md (Substitutions): the paper's motivating use cases are "web data
warehousing and social media data analysis"; with no production traces
available, this generator produces the same *shape* — users with skewed
friend counts and employment histories, messages with free text and
spatial sender locations, and web-access-log lines — all seeded, so every
test and benchmark run sees identical data.
"""

from __future__ import annotations

import random

from repro.adm.values import ADate, ADateTime, APoint, Multiset

_FIRST = ["Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace",
          "Heidi", "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy",
          "Rupert", "Sybil", "Trent", "Victor", "Walter", "Wendy"]
_LAST = ["Smith", "Jones", "Nguyen", "Garcia", "Kim", "Chen", "Patel",
         "Mueller", "Rossi", "Sato", "Okafor", "Silva", "Novak", "Haddad"]
_ORGS = ["UC Irvine", "UC Riverside", "Couchbase", "Yahoo Research",
         "Oracle Labs", "BEA Systems", "Gleambook", "Chirp", "InsightCo",
         "DataWorks"]
_WORDS = ("love hate like the a verizon at t sprint motorola samsung "
          "iphone platform speed customer service signal network plan "
          "shortcut wireless battery reachability voice clarity big data "
          "asterix hyracks query storage index lsm parallel cluster").split()

EPOCH_2005 = ADateTime.parse("2005-01-01T00:00:00").millis
EPOCH_2019 = ADateTime.parse("2019-04-08T00:00:00").millis


class GleambookGenerator:
    """Seeded generator for users, messages, and access-log lines."""

    def __init__(self, seed: int = 42, *,
                 spatial_bounds: tuple = (0.0, 0.0, 100.0, 100.0)):
        self.seed = seed
        self.bounds = spatial_bounds

    def users(self, count: int):
        """Yield GleambookUserType records (Fig. 3(a) schema)."""
        rng = random.Random(self.seed)
        for i in range(count):
            first = rng.choice(_FIRST)
            last = rng.choice(_LAST)
            # skewed friend counts: most users have few, a head has many
            n_friends = min(count - 1,
                            int(rng.paretovariate(1.5)) - 1)
            friends = Multiset(
                sorted(rng.sample(range(count), n_friends))
            ) if n_friends else Multiset()
            n_jobs = rng.choice([0, 1, 1, 1, 2])
            employment = []
            for _ in range(n_jobs):
                start_days = rng.randint(10_000, 17_000)
                job = {
                    "organizationName": rng.choice(_ORGS),
                    "startDate": ADate(start_days),
                }
                if rng.random() < 0.5:
                    job["endDate"] = ADate(start_days
                                           + rng.randint(100, 3000))
                employment.append(job)
            user = {
                "id": i,
                "alias": f"{first.lower()}{i}",
                "name": f"{first} {last}",
                "userSince": ADateTime(
                    rng.randint(EPOCH_2005, EPOCH_2019)
                ),
                "friendIds": friends,
                "employment": employment,
            }
            if rng.random() < 0.3:   # open-type extra field
                user["nickname"] = f"{first[:3]}ster"
            yield user

    def messages(self, count: int, num_users: int):
        """Yield GleambookMessageType records with spatial locations."""
        rng = random.Random(self.seed + 1)
        x0, y0, x1, y1 = self.bounds
        for m in range(count):
            text = " ".join(rng.choice(_WORDS)
                            for _ in range(rng.randint(4, 12)))
            record = {
                "messageId": m,
                "authorId": rng.randrange(num_users),
                "message": text,
                "sendTime": ADateTime(
                    rng.randint(EPOCH_2005, EPOCH_2019)
                ),
            }
            if rng.random() < 0.9:
                record["senderLocation"] = APoint(
                    rng.uniform(x0, x1), rng.uniform(y0, y1)
                )
            if rng.random() < 0.3:
                record["inResponseTo"] = rng.randrange(max(1, m or 1))
            yield record

    def access_log_lines(self, count: int, aliases: list, *,
                         days_back: int = 60,
                         now_millis: int = EPOCH_2019):
        """Yield Fig. 3(b)-format delimited lines for the given user
        aliases (pass ``[u["alias"] for u in users]``); recent activity
        skews toward a subset of users (the 'active users' the Fig. 3(c)
        query finds)."""
        rng = random.Random(self.seed + 2)
        verbs = ["GET", "GET", "GET", "POST", "PUT"]
        paths = ["/home", "/feed", "/msg", "/profile", "/search"]
        day_ms = 86_400_000
        for _ in range(count):
            alias = rng.choice(aliases)
            age_days = rng.uniform(0, days_back)
            t = ADateTime(int(now_millis - age_days * day_ms))
            ip = ".".join(str(rng.randint(1, 254)) for _ in range(4))
            yield (f"{ip}|{t}|{alias}|"
                   f"{rng.choice(verbs)}|{rng.choice(paths)}|"
                   f"{rng.choice([200, 200, 200, 404, 500])}|"
                   f"{rng.randint(100, 9000)}")


def activity_log(count: int, seed: int = 7, *,
                 num_students: int = 20,
                 start: str = "2014-02-03T08:00:00"):
    """Synthetic multitasking-study activities (§V-D, [27]): each record
    is one computer activity with a start/end time that may span time
    bins, plus the app category and a stress self-report."""
    from repro.adm.values import AInterval

    rng = random.Random(seed)
    categories = ["email", "facebook", "writing", "browsing", "coding",
                  "video", "reading"]
    base = ADateTime.parse(start).millis
    records = []
    clock = {s: base for s in range(num_students)}
    for i in range(count):
        student = rng.randrange(num_students)
        gap = rng.randint(0, 15 * 60_000)
        duration = int(rng.expovariate(1 / (20 * 60_000))) + 30_000
        s = clock[student] + gap
        e = s + duration
        clock[student] = e
        records.append({
            "activityId": i,
            "student": student,
            "category": rng.choice(categories),
            "activity": AInterval(s, e),
            "stress": round(rng.uniform(1, 5), 1),
        })
    return records
