"""Structural verification of Algebricks plans and Hyracks jobs.

The rule-based rewriter (:mod:`repro.algebricks.rules`) is only correct
while a set of invariants nothing used to check keeps holding:

* **tree-ness** — a plan is a tree; a rule that aliases a subtree into
  two parents corrupts later mutating rewrites;
* **input arity** — every operator has exactly the inputs its kind
  demands (joins two, scans zero, everything else one);
* **def-before-use** — every variable an operator's expressions use is
  in some input's schema (i.e. has a producer below);
* **single producer, no shadowing** — a variable is produced by exactly
  one operator and never re-produced over a schema that already has it;
* **schema sanity** — no operator emits a duplicate column; projections
  and distincts only name columns their input has;
* **jobgen contracts** — ORDER BY sort keys and GROUP BY grouping keys
  are variable references (the job generator hard-requires this), and
  index-search bounds are closed (no free variables: they are lowered
  with an empty variable map);
* **root shape** — a complete plan is rooted at DistributeResult or
  InsertDelete.

:func:`verify_plan` checks all of these on any (sub)tree and raises
:class:`~repro.common.errors.PlanInvariantError` naming the offending
rewrite rule when one was in flight.  :func:`verify_stream` and
:func:`verify_job` extend the checks across the physical boundary: the
partitioning/ordering properties a compiled stream claims must actually
be established (claimed variables exist in the stream's tuple layout,
which must equal the logical operator's schema), and the generated job
DAG must be structurally sound (dense ports, no dangling edges, single
result sink).

Verification is enabled by :func:`repro.analysis.set_plan_verification`
(on by default under pytest and the chaos/bench runners — see
``tests/conftest.py``).
"""

from __future__ import annotations

from repro.algebricks import logical as L
from repro.algebricks.expressions import LVar, free_vars
from repro.common.errors import JobInvariantError, PlanInvariantError

#: operator class -> required number of inputs
_ARITY = {
    L.EmptyTupleSource: 0,
    L.DataSourceScan: 0,
    L.ExternalScan: 0,
    L.PrimaryIndexSearch: 0,
    L.SecondaryIndexSearch: 0,
    L.Join: 2,
    L.UnionAll: 2,
}


def produced_vars(op: L.LogicalOp) -> list:
    """The variables ``op`` itself introduces (not pass-through)."""
    if isinstance(op, (L.DataSourceScan, L.PrimaryIndexSearch,
                       L.SecondaryIndexSearch)):
        return [*op.pk_vars, op.record_var]
    if isinstance(op, L.ExternalScan):
        return [op.record_var]
    if isinstance(op, L.Assign):
        return [op.var]
    if isinstance(op, L.Unnest):
        out = [op.var]
        if op.positional_var is not None:
            out.append(op.positional_var)
        return out
    if isinstance(op, L.GroupBy):
        return [v for v, _ in op.keys] + [a.var for a in op.aggregates]
    if isinstance(op, L.Aggregate):
        return [a.var for a in op.aggregates]
    if isinstance(op, L.UnionAll):
        return [op.var]
    return []


def _fail(message: str, op: L.LogicalOp, *, rule, invariant: str):
    raise PlanInvariantError(
        f"{message} at [{op.describe()}]",
        rule=rule, invariant=invariant,
    )


def _verify_op(op: L.LogicalOp, rule) -> None:
    """Per-operator invariants (arity, def-before-use, schemas)."""
    expected = _ARITY.get(type(op), 1)
    if len(op.inputs) != expected:
        _fail(
            f"{type(op).__name__} must have {expected} input(s), "
            f"has {len(op.inputs)}", op, rule=rule, invariant="input-arity",
        )

    child_vars: set[int] = set()
    for child in op.inputs:
        child_vars |= set(child.schema())

    used = op.used_vars()
    missing = used - child_vars
    if missing:
        _fail(
            f"uses {sorted('$$%d' % v for v in missing)} produced by no "
            f"input (inputs provide "
            f"{sorted('$$%d' % v for v in child_vars)})",
            op, rule=rule, invariant="def-before-use",
        )

    shadowed = set(produced_vars(op)) & child_vars
    if shadowed:
        _fail(
            f"re-produces {sorted('$$%d' % v for v in shadowed)} already "
            f"in its input schema", op, rule=rule, invariant="shadowing",
        )

    schema = op.schema()
    if len(schema) != len(set(schema)):
        dupes = sorted({v for v in schema if schema.count(v) > 1})
        _fail(f"schema has duplicate column(s) {dupes}", op,
              rule=rule, invariant="schema-duplicates")

    if isinstance(op, L.Project):
        stray = set(op.vars) - child_vars
        if stray:
            _fail(
                f"projects {sorted('$$%d' % v for v in stray)} not in its "
                f"input schema", op, rule=rule, invariant="def-before-use",
            )

    # jobgen contracts ------------------------------------------------------
    if isinstance(op, L.Order):
        for expr, _ in op.pairs:
            if not isinstance(expr, LVar):
                _fail(
                    f"sort key {expr!r} is not a variable reference "
                    f"(jobgen requires pre-assigned sort keys)",
                    op, rule=rule, invariant="sort-key-variable",
                )
    if isinstance(op, L.GroupBy):
        for _, expr in op.keys:
            if not isinstance(expr, LVar):
                _fail(
                    f"group key {expr!r} is not a variable reference "
                    f"(jobgen requires pre-assigned group keys)",
                    op, rule=rule, invariant="group-key-variable",
                )
    if isinstance(op, (L.PrimaryIndexSearch, L.SecondaryIndexSearch)):
        bounds = [*(op.lo or ()), *(op.hi or ())]
        if isinstance(op, L.SecondaryIndexSearch):
            bounds += [e for e in (op.window, op.text) if e is not None]
        for expr in bounds:
            if free_vars(expr):
                _fail(
                    f"index bound {expr!r} has free variables (bounds are "
                    f"lowered with an empty variable map)",
                    op, rule=rule, invariant="closed-index-bounds",
                )
    if isinstance(op, L.UnionAll):
        for i, child in enumerate(op.inputs):
            if len(child.schema()) != 1:
                _fail(
                    f"union branch {i} has schema width "
                    f"{len(child.schema())}, expected 1",
                    op, rule=rule, invariant="union-branch-width",
                )


def verify_plan(root: L.LogicalOp, *, rule: str | None = None,
                require_root: bool = False) -> None:
    """Verify every invariant on the (sub)tree under ``root``.

    ``rule`` names the rewrite rule that just ran, for blame in the
    error message.  ``require_root=True`` additionally asserts the
    complete-plan root shape (DistributeResult | InsertDelete).
    """
    if require_root and not isinstance(
            root, (L.DistributeResult, L.InsertDelete)):
        _fail(
            f"plan root must be DistributeResult or InsertDelete, got "
            f"{type(root).__name__}", root, rule=rule, invariant="root-shape",
        )

    seen: set[int] = set()
    producers: dict[int, L.LogicalOp] = {}
    for op in L.walk(root):
        if id(op) in seen:
            _fail("operator appears twice (plan is not a tree)", op,
                  rule=rule, invariant="tree-shape")
        seen.add(id(op))
        for var in produced_vars(op):
            other = producers.get(var)
            if other is not None:
                _fail(
                    f"variable $${var} produced twice (also at "
                    f"[{other.describe()}])", op,
                    rule=rule, invariant="single-producer",
                )
            producers[var] = op
        _verify_op(op, rule)


# --- the physical boundary ---------------------------------------------------

def verify_stream(op: L.LogicalOp, stream) -> None:
    """Check a compiled :class:`~repro.algebricks.jobgen.Stream` against
    its logical operator: the tuple layout must equal the operator's
    schema, and the partitioning/ordering properties the stream claims
    must be over columns it actually carries."""
    if list(stream.schema) != list(op.schema()):
        raise JobInvariantError(
            f"stream layout {stream.schema} != logical schema "
            f"{op.schema()} for [{op.describe()}]"
        )
    _verify_stream_properties(stream, what=f"[{op.describe()}]")


def _verify_stream_properties(stream, *, what: str) -> None:
    in_schema = set(stream.schema)
    if stream.partitioning and stream.partitioning[0] == "hash":
        claimed = set(stream.partitioning[1])
        if not claimed <= in_schema:
            raise JobInvariantError(
                f"stream claims hash partitioning on "
                f"{sorted(claimed - in_schema)} not in its layout "
                f"{stream.schema} for {what}"
            )
    for var, _ in stream.order:
        if var not in in_schema:
            raise JobInvariantError(
                f"stream claims ordering on $${var} not in its layout "
                f"{stream.schema} for {what}"
            )


def verify_job(job) -> None:
    """Structural invariants of a generated Hyracks job DAG."""
    n = len(job.operators)
    ports: dict[int, list] = {}
    consumers_of: dict[int, list] = {}
    for edge in job.edges:
        if not (0 <= edge.producer < n) or not (0 <= edge.consumer < n):
            raise JobInvariantError(
                f"edge {edge.producer}->{edge.consumer} references an "
                f"operator outside 0..{n - 1}"
            )
        ports.setdefault(edge.consumer, []).append(edge.port)
        consumers_of.setdefault(edge.producer, []).append(edge.consumer)

    for op_id, op in enumerate(job.operators):
        got = sorted(ports.get(op_id, []))
        want = list(range(op.num_inputs)) if got or op.num_inputs else []
        if got and got != want:
            raise JobInvariantError(
                f"operator {op_id} ({op!r}) has input ports {got}, "
                f"expected dense 0..{op.num_inputs - 1}"
            )

    sinks = [op_id for op_id in range(n) if not consumers_of.get(op_id)]
    if len(sinks) != 1:
        raise JobInvariantError(
            f"job must have exactly one sink, found {len(sinks)}: {sinks}"
        )

    # acyclicity via DFS colouring over producer -> consumer edges
    WHITE, GREY, BLACK = 0, 1, 2
    colour = [WHITE] * n

    def visit(op_id: int):
        colour[op_id] = GREY
        for nxt in consumers_of.get(op_id, ()):
            if colour[nxt] is GREY:
                raise JobInvariantError(
                    f"job DAG has a cycle through operator {nxt}"
                )
            if colour[nxt] is WHITE:
                visit(nxt)
        colour[op_id] = BLACK

    for op_id in range(n):
        if colour[op_id] is WHITE:
            visit(op_id)
