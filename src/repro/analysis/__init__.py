"""Static analysis for the compiler: semantic checks, plan verification.

Three layers (docs/STATIC_ANALYSIS.md):

* :func:`analyze_statement` — the semantic analyzer, run between parsing
  and translation for both AQL and SQL++ (4xxx errors);
* :func:`verify_plan` / :func:`verify_job` — structural invariants of
  Algebricks plans and generated Hyracks jobs, hooked after every
  rewrite-rule firing when enabled (41xx errors);
* ``tools/lint`` — the repository's own AST linter (not imported here;
  it must run without the package installed).
"""

from repro.analysis.plan_verifier import (
    verify_job,
    verify_plan,
    verify_stream,
)
from repro.analysis.semantic import SemanticAnalyzer, analyze_statement
from repro.analysis.verify import (
    plan_verification,
    plan_verification_enabled,
    set_plan_verification,
)

__all__ = [
    "SemanticAnalyzer",
    "analyze_statement",
    "plan_verification",
    "plan_verification_enabled",
    "set_plan_verification",
    "verify_job",
    "verify_plan",
    "verify_stream",
]
