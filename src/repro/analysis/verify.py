"""The global plan-verification switch.

Plan verification (:mod:`repro.analysis.plan_verifier`) is cheap but not
free — it walks the plan after every rewrite-rule firing — so production
embedders leave it off, while the test suite, the chaos harness, and the
bench runner turn it on and make every compiled query a verifier test
case.  The switch lives here so the optimizer and the job generator can
consult it without importing each other.

Enable with the environment variable ``REPRO_VERIFY_PLANS=1``, or
programmatically::

    from repro.analysis import set_plan_verification
    set_plan_verification(True)

``tests/conftest.py`` enables it for the whole tier-1 suite.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_TRUE = ("1", "true", "yes", "on")

_enabled = os.environ.get("REPRO_VERIFY_PLANS", "").lower() in _TRUE


def plan_verification_enabled() -> bool:
    """Is plan/job verification currently on?"""
    return _enabled


def set_plan_verification(on: bool) -> bool:
    """Turn plan/job verification on or off; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


@contextmanager
def plan_verification(on: bool):
    """Scoped override, for tests exercising both modes."""
    previous = set_plan_verification(on)
    try:
        yield
    finally:
        set_plan_verification(previous)
