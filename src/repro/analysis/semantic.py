"""The semantic analyzer: the phase between parsing and translation.

Both AQL and SQL++ parse to the shared core AST
(:mod:`repro.lang.core_ast`), so one analyzer serves both languages —
the same structural trick that let the project "implement SQL++ fairly
quickly as a peer of AQL" (paper §IV-A) pays off again here.  The
analyzer walks a statement *before* any plan exists and rejects:

* FROM/INSERT/DELETE references to datasets the catalog does not have
  (:class:`UnknownDatasetError`, ASX4002);
* references to variables bound nowhere in scope
  (:class:`UndefinedVariableError`, ASX4001);
* calls to functions that are neither scalar builtins nor aggregates
  (:class:`UnknownFunctionError`, ASX4003), and scalar calls with the
  wrong number of arguments (:class:`ArityError`, ASX4006);
* field access that the ADM type system can statically refute: an
  undeclared field of a CLOSED type (:class:`UnknownFieldError`,
  ASX4004) or a field access on a declared primitive-typed field
  (:class:`TypeMismatchError`, ASX4005);
* two FROM terms binding one alias (:class:`DuplicateAliasError`,
  ASX4007).

The analyzer mirrors the translator's scoping rules exactly
(WITH -> FROM -> LET -> WHERE -> GROUP BY -> HAVING -> SELECT ->
ORDER BY), including the SQL-92 aggregate-sugar extraction: in a
grouped (or implicitly aggregating) query, aggregate-call arguments are
checked against the *pre*-group scope while the surrounding expression
is checked against the *post*-group scope.  Where the translator has a
narrower special case (inline subqueries, quantifiers over datasets,
LIMIT constants, ORDER BY after DISTINCT), the analyzer stays
deliberately permissive and lets the translator report its own, more
specific error — the analyzer must never reject a statement the
translator accepts.

Type information is tracked only where it is reliable: a FROM term over
a dataset binds its alias to the dataset's declared ADM type, and field
access narrows it.  Anything else (LET bindings, group outputs, open
types, ``any``-typed system datasets) degrades to "unknown", which
disables type checks rather than guessing.
"""

from __future__ import annotations

from repro.adm.types import (
    AnyType,
    MultisetType,
    ObjectType,
    OrderedListType,
    PrimitiveType,
    TypeReference,
)
from repro.common.errors import (
    ArityError,
    DuplicateAliasError,
    MetadataError,
    TypeMismatchError,
    UndefinedVariableError,
    UnknownDatasetError,
    UnknownEntityError,
    UnknownFieldError,
    UnknownFunctionError,
)
from repro.functions.registry import is_scalar, resolve
from repro.lang import core_ast as ast

#: SQL-92 aggregate sugar the translator extracts from SELECT/HAVING/ORDER
#: expressions (repro.lang.translator._SQL_AGGREGATES).
_AGG_SUGAR = frozenset(
    {"count", "sum", "min", "max", "avg", "count_star"}
)


def _canonical(name: str) -> str:
    return name.lower().replace("-", "_")


class _TypeInfo:
    """A (resolved ADM type, owning registry) pair; registry resolves
    TypeReference fields lazily, mirroring instance validation."""

    __slots__ = ("adm_type", "registry")

    def __init__(self, adm_type, registry):
        self.adm_type = adm_type
        self.registry = registry

    def resolved(self):
        """Chase TypeReference links; None when unresolvable."""
        t, hops = self.adm_type, 0
        while isinstance(t, TypeReference):
            if self.registry is None or hops > 16:
                return None
            try:
                t = self.registry.resolve(t.ref_name)
            except UnknownEntityError:
                return None
            hops += 1
        return t


class SemanticAnalyzer:
    """Per-statement semantic checks against one metadata catalog."""

    def __init__(self, metadata):
        self.metadata = metadata

    # ===== statements =====================================================

    def analyze(self, stmt) -> None:
        """Check one statement; raises a SemanticError subclass (4xxx)."""
        if isinstance(stmt, ast.QueryStatement):
            self._check_query(stmt.query)
        elif isinstance(stmt, ast.InsertStatement):
            self._require_dataset(stmt.dataset)
            if isinstance(stmt.payload, ast.SubqueryExpr):
                self._check_select(stmt.payload.query, {})
            else:
                self._check_expr(stmt.payload, {})
        elif isinstance(stmt, ast.DeleteStatement):
            info = self._require_dataset(stmt.dataset)
            if stmt.where is not None:
                alias = stmt.alias or stmt.dataset
                self._check_expr(stmt.where, {alias: info})

    def _check_query(self, query) -> None:
        if isinstance(query, ast.UnionQuery):
            for branch in query.branches:
                self._check_select(branch, {})
        elif isinstance(query, ast.SelectQuery):
            self._check_select(query, {})
        else:
            self._check_expr(query, {})

    # ===== datasets =======================================================

    def _dataset_name_of(self, expr):
        """Mirror of Translator._dataset_name_of."""
        if isinstance(expr, ast.VarRef) and \
                self.metadata.dataset_exists(expr.name):
            return expr.name
        if isinstance(expr, ast.FieldAccess) and \
                isinstance(expr.base, ast.VarRef):
            qualified = f"{expr.base.name}.{expr.field}"
            if self.metadata.dataset_exists(qualified):
                return qualified
        if isinstance(expr, ast.Call) and expr.function.lower() == "dataset":
            arg = expr.args[0] if expr.args else None
            if isinstance(arg, ast.Literal):
                return arg.value
            if isinstance(arg, ast.VarRef):
                return arg.name
        return None

    def _require_dataset(self, name: str) -> _TypeInfo:
        if not self.metadata.dataset_exists(name):
            raise UnknownDatasetError(f"unknown dataset {name}")
        return self._dataset_info(name)

    def _dataset_info(self, name: str) -> _TypeInfo:
        try:
            entry = self.metadata.dataset_entry(name)
            registry = self.metadata.type_registry(entry.dataverse)
            return _TypeInfo(registry.resolve(entry.type_name), registry)
        except MetadataError:
            return _TypeInfo(AnyType(), None)

    # ===== the select core ================================================

    def _check_select(self, q: ast.SelectQuery, outer_env: dict) -> None:
        env = dict(outer_env)

        for name, expr in q.with_clauses:
            self._check_expr(expr, env)
            env[name] = None

        for term in q.from_terms:
            self._check_from_term(term, env)

        for name, expr in q.let_clauses:
            self._check_expr(expr, env)
            env[name] = None

        if q.where is not None:
            self._check_where(q.where, env)

        # GROUP BY / SQL-92 aggregate sugar (mirrors Translator._select)
        has_group = bool(q.group_keys) or bool(q.group_as) \
            or bool(getattr(q, "aql_group_with", None))
        post_exprs = []
        if q.select.value_expr is not None:
            post_exprs.append(q.select.value_expr)
        post_exprs.extend(p.expr for p in q.select.projections if not p.star)
        if q.having is not None:
            post_exprs.append(q.having)
        post_exprs.extend(item.expr for item in q.order_by)
        found_any_agg = any(self._has_aggregate(e) for e in post_exprs)

        pre_env = env
        if has_group:
            post_env: dict = {}
            for gk in q.group_keys:
                post_env[gk.alias] = self._static_type(gk.expr, pre_env,
                                                       check=True)
            if q.group_as:
                post_env[q.group_as] = None
            for name in getattr(q, "aql_group_with", None) or ():
                if name not in pre_env:
                    raise UndefinedVariableError(
                        f"unknown group variable ${name}"
                    )
                post_env[name] = None
            env = post_env
        elif found_any_agg:
            env = {}    # implicit global aggregation empties the scope

        agg_mode = has_group or found_any_agg

        def check_post(expr):
            if agg_mode:
                self._check_post_expr(expr, env, pre_env)
            else:
                self._check_expr(expr, env)

        if q.having is not None:
            check_post(q.having)

        if q.select.value_expr is not None:
            check_post(q.select.value_expr)
        else:
            for proj in q.select.projections:
                if proj.star:
                    continue
                check_post(proj.expr)
                env[proj.alias] = None   # ORDER BY may use the alias

        # after DISTINCT the translator collapses the scope; stay
        # permissive and let it report ORDER BY resolution itself
        if not q.select.distinct:
            for item in q.order_by:
                check_post(item.expr)

        # LIMIT/OFFSET must be constants — the translator enforces it

    def _check_from_term(self, term: ast.FromTerm, env: dict) -> None:
        if term.kind == "from":
            info = self._check_source(term.expr, env)
            if self._dataset_name_of(term.expr) is not None \
                    and term.alias in env:
                raise DuplicateAliasError(f"duplicate alias {term.alias}")
            env[term.alias] = info
            if term.positional_alias:
                env[term.positional_alias] = None
            return
        if term.kind in ("join", "leftjoin"):
            # the right side is built with an EMPTY scope (uncorrelated)
            right_info = self._check_source(term.expr, {})
            env[term.alias] = right_info
            if term.condition is not None:
                self._check_expr(term.condition, env)
            return
        if term.kind in ("unnest", "leftunnest"):
            self._check_expr(term.expr, env)
            env[term.alias] = self._item_info(
                self._static_type(term.expr, env, check=False))
            if term.positional_alias:
                env[term.positional_alias] = None

    def _check_source(self, expr, env: dict):
        """A FROM/JOIN source: dataset reference or collection expression.
        Returns the element type info for the bound alias."""
        ds = self._dataset_name_of(expr)
        if ds is not None:
            # the dataset(...) call form names a dataset whether or not it
            # exists, so existence still has to be checked here
            return self._require_dataset(ds)
        if isinstance(expr, ast.Call) and expr.function.lower() == "dataset":
            arg = expr.args[0] if expr.args else None
            name = arg.value if isinstance(arg, ast.Literal) else None
            raise UnknownDatasetError(f"unknown dataset {name}")
        if isinstance(expr, ast.VarRef) and expr.name not in env:
            raise UnknownDatasetError(
                f"unknown dataset or in-scope collection {expr.name}"
            )
        self._check_expr(expr, env)
        return self._item_info(self._static_type(expr, env, check=False))

    @staticmethod
    def _item_info(info):
        """Element type of iterating a collection-typed expression."""
        if info is None:
            return None
        t = info.resolved()
        if isinstance(t, (OrderedListType, MultisetType)):
            return _TypeInfo(t.item, info.registry)
        return None

    # ===== WHERE (quantifier/EXISTS decorrelation) ========================

    def _check_where(self, where, env: dict) -> None:
        for conjunct in self._conjuncts(where):
            self._check_conjunct(conjunct, env)

    @classmethod
    def _conjuncts(cls, expr):
        if isinstance(expr, ast.Call) and expr.function.lower() == "and":
            out = []
            for arg in expr.args:
                out.extend(cls._conjuncts(arg))
            return out
        return [expr]

    def _check_conjunct(self, conjunct, env: dict) -> None:
        if isinstance(conjunct, ast.QuantifiedExpr):
            ds = self._dataset_name_of(conjunct.collection)
            if ds is not None:      # decorrelated into a semi/anti join
                inner = dict(env)
                inner[conjunct.var] = self._dataset_info(ds)
                self._check_expr(conjunct.predicate, inner)
                return
        if isinstance(conjunct, ast.ExistsExpr) and \
                isinstance(conjunct.subquery, ast.SubqueryExpr):
            sub = conjunct.subquery.query
            if (len(sub.from_terms) == 1 and not sub.group_keys
                    and not sub.let_clauses and not sub.order_by):
                ds = self._dataset_name_of(sub.from_terms[0].expr)
                if ds is not None:
                    inner = dict(env)
                    inner[sub.from_terms[0].alias] = self._dataset_info(ds)
                    if sub.where is not None:
                        self._check_expr(sub.where, inner)
                    return
        self._check_expr(conjunct, env)

    # ===== aggregate-aware expression checking ============================

    def _has_aggregate(self, expr) -> bool:
        """Does _extract_aggregates find sugar here?  Mirrors its
        traversal: it does NOT descend into quantifiers or subqueries."""
        if isinstance(expr, ast.Call):
            if expr.function.lower() in _AGG_SUGAR:
                return True
            return any(self._has_aggregate(a) for a in expr.args)
        if isinstance(expr, ast.FieldAccess):
            return self._has_aggregate(expr.base)
        if isinstance(expr, ast.IndexAccess):
            return self._has_aggregate(expr.base) \
                or self._has_aggregate(expr.index)
        if isinstance(expr, ast.ObjectExpr):
            return any(self._has_aggregate(n) or self._has_aggregate(v)
                       for n, v in expr.pairs)
        if isinstance(expr, ast.ArrayExpr):
            return any(self._has_aggregate(i) for i in expr.items)
        if isinstance(expr, ast.CaseWhen):
            return any(self._has_aggregate(c) or self._has_aggregate(r)
                       for c, r in expr.whens) \
                or self._has_aggregate(expr.default)
        return False

    def _check_post_expr(self, expr, post_env: dict, pre_env: dict) -> None:
        """Check a SELECT/HAVING/ORDER expression of an aggregating query:
        aggregate-call arguments see the pre-group scope, everything else
        the post-group scope (mirroring the extraction rewrite)."""
        if isinstance(expr, ast.Call):
            if expr.function.lower() in _AGG_SUGAR:
                for arg in expr.args:
                    self._check_expr(arg, pre_env)
                return
            self._check_function(expr)
            for arg in expr.args:
                self._check_post_expr(arg, post_env, pre_env)
            return
        if isinstance(expr, ast.FieldAccess):
            self._check_post_expr(expr.base, post_env, pre_env)
            self._check_field(expr, self._static_type(
                expr.base, post_env, check=False), check=True)
            return
        if isinstance(expr, ast.IndexAccess):
            self._check_post_expr(expr.base, post_env, pre_env)
            self._check_post_expr(expr.index, post_env, pre_env)
            return
        if isinstance(expr, ast.ObjectExpr):
            for n, v in expr.pairs:
                self._check_post_expr(n, post_env, pre_env)
                self._check_post_expr(v, post_env, pre_env)
            return
        if isinstance(expr, ast.ArrayExpr):
            for item in expr.items:
                self._check_post_expr(item, post_env, pre_env)
            return
        if isinstance(expr, ast.CaseWhen):
            for c, r in expr.whens:
                self._check_post_expr(c, post_env, pre_env)
                self._check_post_expr(r, post_env, pre_env)
            self._check_post_expr(expr.default, post_env, pre_env)
            return
        # extraction does not descend further; neither do we
        self._check_expr(expr, post_env)

    # ===== expressions ====================================================

    def _check_expr(self, e, env: dict) -> None:
        """Scope- and type-check an expression against ``env``
        (name -> _TypeInfo | None)."""
        if isinstance(e, ast.Literal):
            return
        if isinstance(e, ast.VarRef):
            if e.name in env:
                return
            if self.metadata.dataset_exists(e.name):
                return   # translator reports dataset-used-as-value itself
            raise UndefinedVariableError(f"unresolved identifier {e.name}")
        if isinstance(e, ast.FieldAccess):
            self._check_expr(e.base, env)
            self._static_type(e, env, check=True)
            return
        if isinstance(e, ast.IndexAccess):
            self._check_expr(e.base, env)
            self._check_expr(e.index, env)
            return
        if isinstance(e, ast.Call):
            self._check_function(e)
            for arg in e.args:
                self._check_expr(arg, env)
            return
        if isinstance(e, ast.QuantifiedExpr):
            inner = dict(env)
            if self._dataset_name_of(e.collection) is None:
                self._check_expr(e.collection, env)
                inner[e.var] = self._item_info(
                    self._static_type(e.collection, env, check=False))
            else:
                inner[e.var] = self._dataset_info(
                    self._dataset_name_of(e.collection))
            self._check_expr(e.predicate, inner)
            return
        if isinstance(e, ast.CaseWhen):
            for c, r in e.whens:
                self._check_expr(c, env)
                self._check_expr(r, env)
            self._check_expr(e.default, env)
            return
        if isinstance(e, ast.ObjectExpr):
            for n, v in e.pairs:
                self._check_expr(n, env)
                self._check_expr(v, env)
            return
        if isinstance(e, ast.ArrayExpr):
            for item in e.items:
                self._check_expr(item, env)
            return
        if isinstance(e, ast.SubqueryExpr):
            self._check_inline_subquery(e.query, env)
            return
        if isinstance(e, ast.ExistsExpr):
            self._check_expr(e.subquery, env)
            return
        # unknown node kind: the translator will reject it

    def _check_function(self, call: ast.Call) -> None:
        fn = _canonical(call.function)
        if fn in _AGG_SUGAR or fn == "dataset":
            return      # context-dependent; the translator arbitrates
        if not is_scalar(fn):
            raise UnknownFunctionError(f"unknown function {call.function}")
        func = resolve(fn)
        if not func.check_arity(len(call.args)):
            raise ArityError(
                f"wrong number of arguments for {call.function}: "
                f"got {len(call.args)}"
            )

    def _check_inline_subquery(self, q: ast.SelectQuery, env: dict) -> None:
        """Subquery-as-expression: FROM aliases become lambda bindings
        over the enclosing scope.  The translator rejects datasets and
        GROUP/ORDER/LIMIT here, so stay permissive on those."""
        if q.group_keys or q.group_as or q.order_by or q.limit is not None:
            return
        inner = dict(env)
        for term in q.from_terms:
            if term.kind not in ("from", "unnest"):
                return
            if self._dataset_name_of(term.expr) is None:
                self._check_expr(term.expr, inner)
            inner[term.alias] = None
        for name, expr in q.let_clauses:
            self._check_expr(expr, inner)
            inner[name] = None
        if q.where is not None:
            self._check_expr(q.where, inner)
        if q.select.value_expr is not None:
            self._check_expr(q.select.value_expr, inner)
        else:
            for proj in q.select.projections:
                if not proj.star:
                    self._check_expr(proj.expr, inner)

    # ===== static typing ==================================================

    def _static_type(self, expr, env: dict, *, check: bool):
        """Best-effort static ADM type of ``expr``; None = unknown.
        With ``check=True``, field accesses that the type system refutes
        raise (UnknownFieldError / TypeMismatchError)."""
        if isinstance(expr, ast.VarRef):
            return env.get(expr.name)
        if isinstance(expr, ast.FieldAccess):
            base = self._static_type(expr.base, env, check=check)
            return self._check_field(expr, base, check=check)
        return None

    def _check_field(self, access: ast.FieldAccess, base_info, *,
                     check: bool):
        """Type of ``base.field`` given the base's type info."""
        if base_info is None:
            return None
        base = base_info.resolved()
        if isinstance(base, ObjectType):
            ft = base.field_type(access.field)
            if ft is not None:
                return _TypeInfo(ft, base_info.registry)
            if not base.is_open and check:
                raise UnknownFieldError(
                    f"field {access.field} is not declared by closed "
                    f"type {base.name}"
                )
            return None
        if isinstance(base, PrimitiveType) and check:
            raise TypeMismatchError(
                f"field access .{access.field} on {base.name}-typed "
                f"expression"
            )
        return None


def analyze_statement(stmt, metadata) -> None:
    """Semantic-check one parsed statement against the catalog."""
    SemanticAnalyzer(metadata).analyze(stmt)
