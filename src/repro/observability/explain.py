"""Structured EXPLAIN: logical plans and Hyracks job DAGs as dicts.

``AsterixInstance.explain(query)`` returns an :class:`ExplainResult`
holding both compiler artifacts the paper's Fig. 5 pipeline produces:

* the optimized Algebricks logical plan — a nested dict mirroring the
  operator tree (``plan_to_dict``), plus the classic indented text; and
* the generated Hyracks job — operators and connector edges as flat
  lists (``job_to_dict``), plus :meth:`JobSpecification.describe` text;

together with the rewrite-rule firings and per-phase compile timings, so
"why is my query slow" and "why didn't my index get picked" are both
answerable without running the job.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


def _value_to_plain(value):
    """Render an operator field for the structured plan."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_value_to_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _value_to_plain(v) for k, v in value.items()}
    return repr(value)           # LExpr / AggCall / adm values


def plan_to_dict(op) -> dict:
    """A logical operator tree as nested dicts (inputs recurse)."""
    out = {"operator": type(op).__name__, "label": op.describe()}
    est = getattr(op, "est_card", None)
    if est is not None:
        out["estimated_cardinality"] = est
    if dataclasses.is_dataclass(op):
        for f in dataclasses.fields(op):
            if f.name == "inputs":
                continue
            out[f.name] = _value_to_plain(getattr(op, f.name))
    out["inputs"] = [plan_to_dict(child) for child in op.inputs]
    return out


def job_to_dict(job) -> dict:
    """A Hyracks :class:`JobSpecification` as operator/edge lists."""
    return {
        "operators": [
            {
                "id": op_id,
                "name": repr(op),
                "partitions": (op.partition_count
                               if op.partition_count is not None
                               else "cluster-width"),
                **({"estimated_cardinality": est}
                   if (est := getattr(op, "estimated_cardinality",
                                      None)) is not None else {}),
            }
            for op_id, op in enumerate(job.operators)
        ],
        "edges": [
            {
                "producer": e.producer,
                "consumer": e.consumer,
                "port": e.port,
                "connector": repr(e.connector),
            }
            for e in job.edges
        ],
    }


def access_methods(root) -> list:
    """How each data source in an optimized plan is read: one dict per
    scan/search operator, in plan (top-down) order.  This is the "why
    didn't my index get picked" answer at a glance — ``method`` is
    ``primary-scan``, ``primary-index``, or ``<kind>-index`` with the
    index name attached."""
    from repro.algebricks import logical as L

    out = []
    for op in L.walk(root):
        if isinstance(op, L.DataSourceScan):
            out.append({"dataset": op.dataset, "method": "primary-scan"})
        elif isinstance(op, L.PrimaryIndexSearch):
            out.append({"dataset": op.dataset, "method": "primary-index"})
        elif isinstance(op, L.SecondaryIndexSearch):
            out.append({
                "dataset": op.dataset,
                "method": f"{op.index_kind}-index",
                "index": op.index_name,
            })
        elif isinstance(op, L.ExternalScan):
            out.append({"dataset": op.dataset, "method": "external-scan"})
    return out


@dataclass
class ExplainResult:
    """Both halves of the compiled query, structured and pretty."""

    statement: str = ""
    language: str = "sqlpp"
    logical_plan: dict = field(default_factory=dict)
    logical_text: str = ""
    job: dict = field(default_factory=dict)
    job_text: str = ""
    fired_rules: list = field(default_factory=list)
    rewrites: dict = field(default_factory=dict)
    phases: list = field(default_factory=list)       # [{name, duration_us}]
    access_methods: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "statement": self.statement,
            "language": self.language,
            "logical_plan": self.logical_plan,
            "job": self.job,
            "fired_rules": list(self.fired_rules),
            "rewrites": dict(self.rewrites),
            "phases": [dict(p) for p in self.phases],
            "access_methods": [dict(m) for m in self.access_methods],
        }

    def pretty(self) -> str:
        lines = [f"-- optimized logical plan ({self.language}) --",
                 self.logical_text,
                 "-- hyracks job --",
                 self.job_text]
        if self.access_methods:
            lines.append("-- access methods --")
            for m in self.access_methods:
                via = f" via {m['index']}" if "index" in m else ""
                lines.append(f"  {m['dataset']}: {m['method']}{via}")
        if self.fired_rules:
            lines.append("-- fired rewrite rules --")
            lines.append("  " + ", ".join(self.fired_rules))
        if self.phases:
            lines.append("-- compile phases --")
            for p in self.phases:
                lines.append(f"  {p['name']:<10} {p['duration_us']:10.1f} us")
        return "\n".join(lines)
