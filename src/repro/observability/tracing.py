"""Query tracing: spans, phase timings, and the structured QueryTrace.

One executed statement produces one :class:`QueryTrace` recording the
compile-and-execute pipeline the paper's Fig. 5 describes:

    parse -> translate -> optimize -> jobgen -> execute

Each phase is a :class:`Span` with a wall-clock duration; the optimize
phase additionally carries the rewrite-rule firings collected by
:class:`RewriteRecorder`, and the execute phase carries one span event
per Hyracks operator with its per-partition simulated costs (see
:mod:`repro.hyracks.profiler` for how simulated time relates to
wall-clock — the trace records *both*).

All structures serialize to plain dicts (``to_dict``) so tests and
benchmark harnesses can assert on them, and pretty-print (``pretty``)
for humans.  Span and metric naming conventions are documented in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

#: The pipeline phases a fully traced query reports, in order.
QUERY_PHASES = ("parse", "analyze", "translate", "optimize", "jobgen",
                "execute")


@dataclass
class Span:
    """One timed section of work, with attributes and point events."""

    name: str
    attributes: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    started_at: float = 0.0
    duration_us: float = 0.0

    def add_event(self, name: str, **attrs) -> None:
        self.events.append({"name": name, **attrs})

    def to_dict(self) -> dict:
        out = {"name": self.name, "duration_us": self.duration_us}
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.events:
            out["events"] = [dict(e) for e in self.events]
        return out


@dataclass
class RuleFiring:
    """One rewrite rule that changed the plan."""

    rule: str                     # e.g. "push_select_down"
    target: str                   # logical operator label it rewrote
    pass_no: int
    duration_us: float = 0.0

    def to_dict(self) -> dict:
        return {"rule": self.rule, "target": self.target,
                "pass": self.pass_no, "duration_us": self.duration_us}


class RewriteRecorder:
    """Collects which optimizer rules fired and what they changed.

    :func:`repro.algebricks.rules.optimize` drives this: every rule
    invocation is timed (``rule_times_us`` aggregates even non-firing
    attempts, the number benchmark authors need to find slow rules);
    firings additionally record the operator label they rewrote.
    """

    def __init__(self):
        self.firings: list[RuleFiring] = []
        self.rule_times_us: dict[str, float] = {}
        self.passes = 0
        self.plan_signatures: list[list[str]] = []   # after each pass

    @staticmethod
    def rule_name(fn) -> str:
        name = getattr(fn, "__name__", str(fn))
        return name[5:] if name.startswith("rule_") else name

    def observe(self, rule: str, duration_us: float, *, fired: bool,
                target: str) -> None:
        self.rule_times_us[rule] = (
            self.rule_times_us.get(rule, 0.0) + duration_us
        )
        if fired:
            self.firings.append(
                RuleFiring(rule, target, self.passes, duration_us)
            )

    def end_pass(self, signature: list[str]) -> None:
        self.passes += 1
        self.plan_signatures.append(signature)

    @property
    def fired_rules(self) -> list[str]:
        """Distinct rule names that changed the plan, in firing order."""
        seen: list[str] = []
        for firing in self.firings:
            if firing.rule not in seen:
                seen.append(firing.rule)
        return seen

    def to_dict(self) -> dict:
        return {
            "fired_rules": self.fired_rules,
            "firings": [f.to_dict() for f in self.firings],
            "passes": self.passes,
            "rule_times_us": dict(self.rule_times_us),
        }


@dataclass
class QueryTrace:
    """Everything observed about one statement's trip through the stack."""

    statement: str = ""
    language: str = "sqlpp"
    kind: str = ""                        # query | dml | ddl
    phases: list = field(default_factory=list)       # list[Span], in order
    rewrites: RewriteRecorder = field(default_factory=RewriteRecorder)
    operators: list = field(default_factory=list)    # per-operator dicts
    metrics: dict = field(default_factory=dict)      # registry delta
    metrics_totals: dict = field(default_factory=dict)   # post-exec snapshot
    plan_text: str = ""
    simulated_us: float = 0.0
    wall_seconds: float = 0.0

    @contextmanager
    def phase(self, name: str, **attrs):
        """Time a pipeline phase; appends a Span on exit (even on error)."""
        span = Span(name, attributes=dict(attrs),
                    started_at=time.perf_counter())
        try:
            yield span
        finally:
            span.duration_us = (
                (time.perf_counter() - span.started_at) * 1e6
            )
            self.phases.append(span)

    def phase_names(self) -> list[str]:
        return [span.name for span in self.phases]

    def find_phase(self, name: str) -> Span | None:
        for span in self.phases:
            if span.name == name:
                return span
        return None

    @property
    def fired_rules(self) -> list[str]:
        return self.rewrites.fired_rules

    def to_dict(self) -> dict:
        return {
            "statement": self.statement,
            "language": self.language,
            "kind": self.kind,
            "phases": [span.to_dict() for span in self.phases],
            "rewrites": self.rewrites.to_dict(),
            "operators": [dict(op) for op in self.operators],
            "metrics": dict(self.metrics),
            "metrics_totals": dict(self.metrics_totals),
            "plan": self.plan_text,
            "simulated_us": self.simulated_us,
            "wall_seconds": self.wall_seconds,
        }

    def pretty(self) -> str:
        lines = [f"trace [{self.language}/{self.kind}] "
                 f"{self.statement.strip()[:60]!r}"]
        for span in self.phases:
            lines.append(f"  phase {span.name:<10} "
                         f"{span.duration_us:10.1f} us")
            for event in span.events:
                name = event.get("name", "?")
                extra = ", ".join(
                    f"{k}={v}" for k, v in event.items() if k != "name"
                )
                lines.append(f"    - {name} {extra}".rstrip())
        if self.fired_rules:
            lines.append("  fired rules: " + ", ".join(self.fired_rules))
        for op in self.operators:
            lines.append(
                f"  op {op['name']:<28} elapsed "
                f"{op['elapsed_us'] / 1000:8.2f} ms  "
                f"out {op['tuples_out']}"
            )
        if self.metrics:
            lines.append("  metrics delta:")
            for name in sorted(self.metrics):
                lines.append(f"    {name:<32} {self.metrics[name]}")
        if self.simulated_us:
            lines.append(f"  simulated {self.simulated_us / 1000:.2f} ms, "
                         f"wall {self.wall_seconds * 1000:.2f} ms")
        return "\n".join(lines)


def maybe_phase(trace: QueryTrace | None, name: str, **attrs):
    """``trace.phase(name)`` or a no-op context when tracing is off."""
    if trace is None:
        return nullcontext()
    return trace.phase(name, **attrs)
