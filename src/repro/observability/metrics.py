"""The process-wide metrics registry (counters, gauges, histograms).

Instrumented subsystems (the buffer cache, the LSM lifecycles, the
cluster's job executor, the API layer) register named metrics here and
bump them as events happen; benchmarks and the query tracer read them
back via :meth:`MetricsRegistry.snapshot` and per-query deltas.

Conventions (documented for benchmark authors in docs/OBSERVABILITY.md):

* metric names are dot-separated ``subsystem.event`` strings, e.g.
  ``buffer_cache.hits`` or ``lsm.flushes``;
* counters are monotonic within a registry generation — :meth:`reset`
  zeroes values **in place**, so cached ``Counter`` handles held by
  long-lived objects stay valid across resets;
* histograms record raw observations (bounded reservoir) and expose
  ``count/sum/mean/min/max/percentile``.

There is one default registry per process (:func:`get_registry`),
mirroring the "one metrics endpoint per node" shape of the real
system's cluster controller.
"""

from __future__ import annotations

import threading
from bisect import insort

from repro.common.errors import AsterixError


class MetricError(AsterixError):
    """Metric name registered twice with conflicting types."""

    code = 3900


class Counter:
    """A monotonically increasing count of events.

    Updates are lock-protected: the parallel job executor bumps metrics
    from several node-worker threads at once, and ``value += n`` on its
    own is not atomic in CPython.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (e.g. pinned pages, open txns)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Raw-observation histogram with a bounded, sorted reservoir.

    Keeps up to ``max_samples`` observations (oldest evicted first, which
    is adequate for per-query latency distributions); ``count`` and
    ``sum`` are exact regardless of eviction.
    """

    __slots__ = ("name", "max_samples", "count", "sum", "min", "max",
                 "_sorted", "_order", "_lock")

    def __init__(self, name: str, max_samples: int = 4096):
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._sorted: list[float] = []
        self._order: list[float] = []    # insertion order, for eviction
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._order) >= self.max_samples:
                oldest = self._order.pop(0)
                idx = self._index_of(oldest)
                if idx is not None:
                    self._sorted.pop(idx)
            insort(self._sorted, value)
            self._order.append(value)

    def _index_of(self, value: float):
        from bisect import bisect_left

        i = bisect_left(self._sorted, value)
        if i < len(self._sorted) and self._sorted[i] == value:
            return i
        return None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """p in [0, 100]; nearest-rank over the reservoir."""
        if not self._sorted:
            return 0.0
        if not 0 <= p <= 100:
            raise MetricError(f"percentile {p} out of range")
        rank = max(0, min(len(self._sorted) - 1,
                          int(round(p / 100.0 * (len(self._sorted) - 1)))))
        return self._sorted[rank]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None
            self._sorted.clear()
            self._order.clear()

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }

    def __repr__(self):
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Name -> metric instance; get-or-create, type-checked."""

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """name -> scalar value (histograms become summary dicts)."""
        out = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def delta(self, before: dict) -> dict:
        """Counter/gauge changes since a prior :meth:`snapshot`.

        Histograms are reported as observation-count deltas under
        ``name.count``.  Metrics unchanged since ``before`` are omitted,
        so a query trace shows only what the query actually touched.
        """
        out = {}
        for name, value in self.snapshot().items():
            prev = before.get(name, 0)
            if isinstance(value, dict):           # histogram summary
                prev_count = prev.get("count", 0) if isinstance(prev, dict) \
                    else 0
                if value["count"] != prev_count:
                    out[name + ".count"] = value["count"] - prev_count
            elif value != prev:
                out[name] = value - prev
        return out

    def reset(self) -> None:
        """Zero every metric in place (cached handles stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
