"""Observability: tracing spans, the metrics registry, runtime EXPLAIN.

The measurement surface for every benchmark and perf PR:

* :mod:`repro.observability.metrics` — a process-wide registry of named
  counters/gauges/histograms fed by the buffer cache, LSM lifecycles,
  the job executor, and the API layer;
* :mod:`repro.observability.tracing` — :class:`QueryTrace` (per-phase
  spans, fired rewrite rules, per-operator partition costs, metric
  deltas) produced by ``execute(..., trace=True)``;
* :mod:`repro.observability.explain` — :class:`ExplainResult`
  (structured logical plan + Hyracks job DAG) from
  ``AsterixInstance.explain``.

See docs/OBSERVABILITY.md for the naming contract.
"""

from repro.observability.explain import (
    access_methods,
    ExplainResult,
    job_to_dict,
    plan_to_dict,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
)
from repro.observability.tracing import (
    QUERY_PHASES,
    QueryTrace,
    RewriteRecorder,
    RuleFiring,
    Span,
    maybe_phase,
)

__all__ = [
    "Counter",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "QUERY_PHASES",
    "QueryTrace",
    "RewriteRecorder",
    "RuleFiring",
    "Span",
    "get_registry",
    "access_methods",
    "job_to_dict",
    "maybe_phase",
    "plan_to_dict",
]
