"""Resilience: deterministic fault injection, node failure, retry.

The subsystem has three small parts, wired through every layer below the
API (docs/RESILIENCE.md is the guide):

* :mod:`repro.resilience.faults` — typed faults and the node lifecycle
  (:class:`NodeState`);
* :mod:`repro.resilience.injector` — named injection sites evaluated
  against seeded, deterministic :class:`FaultSchedule` rules;
* :mod:`repro.resilience.retry` — capped exponential backoff on a
  simulated clock.

Recovery itself (WAL replay into reopened LSM partitions) lives in
:mod:`repro.txn` — this package decides *when* a node crashes and
*when* it restarts; `repro.hyracks.cluster` carries out both.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    DiskIOFault,
    FeedSourceFault,
    MemoryBudgetFault,
    MemoryPressureFault,
    NodeCrashFault,
    NodeState,
    OperatorFault,
    ResilienceFault,
)
from repro.resilience.injector import (
    NO_FAULTS,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    FaultScheduleError,
    ScopedInjector,
)
from repro.resilience.retry import RetryPolicy, SimulatedClock, call_with_retry

__all__ = [
    "FAULT_KINDS",
    "DiskIOFault",
    "FaultInjector",
    "FaultRule",
    "FaultSchedule",
    "FaultScheduleError",
    "FeedSourceFault",
    "MemoryBudgetFault",
    "MemoryPressureFault",
    "NO_FAULTS",
    "NodeCrashFault",
    "NodeState",
    "OperatorFault",
    "ResilienceFault",
    "RetryPolicy",
    "ScopedInjector",
    "SimulatedClock",
    "call_with_retry",
]
