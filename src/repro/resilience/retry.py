"""Retry with capped exponential backoff on a simulated clock.

Job retries (``ClusterController.run_job``) and feed source re-pulls
(``FeedManager.pump``) share this policy.  Backoff advances a
:class:`SimulatedClock` instead of sleeping — retries are instantaneous
in wall-clock terms but their cost is visible on the simulated timeline
and in the ``resilience.backoff_simulated_us`` histogram, the same
two-clock discipline the executor uses (docs/OBSERVABILITY.md, "Two
clocks").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.observability.metrics import get_registry


class SimulatedClock:
    """A monotone microsecond counter advanced by simulated waiting."""

    def __init__(self):
        self.now_us = 0.0
        self._lock = threading.Lock()

    def advance(self, us: float) -> float:
        """Advance time by ``us`` microseconds; returns the new now."""
        with self._lock:
            self.now_us += max(0.0, us)
            return self.now_us


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: attempt k (1-based) waits
    ``min(cap_us, base_delay_us * multiplier**(k-1))`` simulated
    microseconds; after ``max_attempts`` retries the fault propagates."""

    max_attempts: int = 3
    base_delay_us: float = 1000.0
    multiplier: float = 2.0
    cap_us: float = 64000.0

    def delay_us(self, attempt: int) -> float:
        if attempt < 1:
            attempt = 1
        return min(self.cap_us,
                   self.base_delay_us * self.multiplier ** (attempt - 1))

    def backoff(self, attempt: int, clock: SimulatedClock,
                metric: str = "resilience.backoff_simulated_us") -> float:
        """Advance ``clock`` by attempt k's delay and record it."""
        delay = self.delay_us(attempt)
        clock.advance(delay)
        get_registry().histogram(metric).observe(delay)
        return delay


def call_with_retry(fn, policy: RetryPolicy, clock: SimulatedClock, *,
                    retry_on: tuple = (Exception,), on_fault=None):
    """Run ``fn()`` under ``policy``: on a ``retry_on`` error, invoke
    ``on_fault(fault, attempt)`` (if given), back off on the simulated
    clock, and try again; re-raises once retries are exhausted."""
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as fault:
            attempt += 1
            if on_fault is not None:
                on_fault(fault, attempt)
            if attempt > policy.max_attempts:
                raise
            policy.backoff(attempt, clock)
