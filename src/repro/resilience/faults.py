"""The failure model: typed faults and the node lifecycle.

The paper's feature contract promises NoSQL-style record-level
transactions with WAL-backed recovery (Section III, feature 9), and the
companion fault-tolerant-feeds work (Grover & Carey) makes surviving
mid-job node failures a first-class system property.  This module is the
*vocabulary* of that story: every injectable failure is a typed exception
carrying the injection site and node it fired on, and every simulated
node is in exactly one :class:`NodeState` at any time.

Faults are :class:`~repro.common.errors.AsterixError` subclasses (codes
35xx) so existing error handling — tests matching on codes, the API
layer's error reporting — treats them like any other system error, while
the resilience machinery (`repro.hyracks.cluster` retries,
`repro.feeds.feed` buffer-and-replay) can catch :class:`ResilienceFault`
specifically and react per type:

* :class:`NodeCrashFault` — the hosting node dies: its LSM memory
  components and temp runfiles are gone, durable files survive, and the
  node must be restarted (WAL replay) before it serves again.
* :class:`DiskIOFault` — one page read/write failed transiently; the
  enclosing job/entity operation is retried without a node restart.
* :class:`OperatorFault` — a Hyracks operator task failed; the job is
  aborted and retried.
* :class:`FeedSourceFault` — the external source of a feed dropped; the
  feed layer backs off, re-pulls, and replays its pending batch with
  at-least-once, primary-key-deduplicated delivery.

Two members of the band are *not* injectable — they surface naturally
from the node-level memory governor (:mod:`repro.hyracks.memory`):

* :class:`MemoryPressureFault` — an admission/feed memory request
  queued past its capped wait; retried like any transient fault.
* :class:`MemoryBudgetFault` — a minimum reservation larger than the
  node's whole budget; rejected immediately, never queued.
"""

from __future__ import annotations

import enum

from repro.common.errors import AsterixError


class NodeState(enum.Enum):
    """Lifecycle of a simulated node (`repro.hyracks.cluster`).

    ALIVE — serving; FAILED — crashed, memory state lost, awaiting
    restart; RESTARTING — reopening partitions from manifests and
    replaying the WAL.  Transitions: ALIVE -> FAILED (crash),
    FAILED -> RESTARTING -> ALIVE (recovery).
    """

    ALIVE = "alive"
    FAILED = "failed"
    RESTARTING = "restarting"


class ResilienceFault(AsterixError):
    """Base class of all injectable faults.

    Attributes:
        site: the named injection site that raised it (e.g.
            ``"disk.read_page"``; docs/RESILIENCE.md lists them all).
        node: node id the fault fired on (None for node-less sites such
            as ``feed.next_batch``).
        context: the full site context passed to
            :meth:`~repro.resilience.injector.FaultInjector.hit`.
    """

    code = 3500
    #: Transient faults are retried in place; non-transient ones require
    #: node recovery (crash) or source recovery (feed) first.
    transient = True

    def __init__(self, message: str = "", *, site: str = "",
                 node: int | None = None, context: dict | None = None):
        self.site = site
        self.node = node
        self.context = dict(context or {})
        where = site or "unknown site"
        if node is not None:
            where += f" on node {node}"
        super().__init__(message or f"injected {type(self).__name__} "
                         f"at {where}")


class NodeCrashFault(ResilienceFault):
    """The hosting node crashed: memory components and temp runfiles are
    lost; only durable files (sealed LSM components, the fsynced WAL
    prefix) survive."""

    code = 3501
    transient = False


class DiskIOFault(ResilienceFault):
    """A physical page read/write failed (transient media error)."""

    code = 3502


class OperatorFault(ResilienceFault):
    """A Hyracks operator task failed mid-stage."""

    code = 3503


class FeedSourceFault(ResilienceFault):
    """The external source behind a feed dropped its connection."""

    code = 3504
    transient = False


class MemoryPressureFault(ResilienceFault):
    """A memory request queued against the node-level
    :class:`~repro.hyracks.memory.MemoryGovernor` and the capped
    admission wait expired before enough frames were released.  Unlike
    the injectable faults above, this one arises *naturally* under
    contention; it is transient — the job retry loop (or the feed
    pump's backoff) re-requests once concurrent work has drained."""

    code = 3505


class MemoryBudgetFault(ResilienceFault):
    """A memory request's *minimum* reservation exceeds the node's whole
    ``query_memory_frames`` budget — no amount of waiting can ever admit
    it, so the governor rejects immediately instead of queueing."""

    code = 3506
    transient = False


#: Schedule-file names -> fault classes (docs/RESILIENCE.md, "Schedule
#: format"); :meth:`FaultSchedule.from_dict` resolves through this.
FAULT_KINDS = {
    "node_crash": NodeCrashFault,
    "disk_io": DiskIOFault,
    "operator": OperatorFault,
    "feed_source": FeedSourceFault,
}

#: Reverse map for serializing schedules and metric suffixes
#: (``resilience.faults.<kind>``).
KIND_OF_FAULT = {cls: kind for kind, cls in FAULT_KINDS.items()}
