"""Deterministic, seeded fault injection.

Instrumented code calls :meth:`FaultInjector.hit` at *named sites* —
``disk.read_page``, ``wal.flush``, ``executor.operator``,
``feed.next_batch`` — on every pass through the guarded operation.  A
:class:`FaultSchedule` decides which hits raise which typed fault
(:mod:`repro.resilience.faults`), either on the **Nth hit** of a site or
by **seeded probability**, so a given (schedule, workload) pair always
fails at exactly the same operations: the property that makes the chaos
harness (`tools/chaos_runner.py`) able to assert byte-identical results
against a fault-free run, and the crash-point tests able to kill a node
at every WAL flush boundary in turn.

Determinism and threads: hit counters are kept **per (site, node)
stream**.  Every node-scoped site is only ever hit under that node's
lock (the parallel executor serializes per-node work), so each stream
sees a reproducible hit sequence no matter how node workers interleave.
Rules should therefore pin ``node`` when targeting node-scoped sites on
a multi-node cluster; probability rules draw from a per-stream RNG
seeded with ``(schedule.seed, site, node)`` via CRC32, never Python's
salted ``hash()``.

A disarmed injector (no schedule) is a near-no-op — one attribute check
per hit — so production paths keep it permanently wired in.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field

from repro.common.errors import AsterixError
from repro.observability.metrics import get_registry
from repro.resilience.faults import FAULT_KINDS, KIND_OF_FAULT, ResilienceFault


class FaultScheduleError(AsterixError):
    """A malformed fault rule or schedule."""

    code = 3510


@dataclass
class FaultRule:
    """One arming of one site.

    Exactly one of ``at_hit`` (fire on the Nth hit of the (site, node)
    stream, 1-based) or ``probability`` (fire each hit with probability
    p, drawn from the stream's seeded RNG) must be set.  ``node=None``
    matches every stream of the site; pin it for deterministic firing on
    multi-node clusters.  ``max_fires`` caps total firings (default 1:
    fail once, then let the retry succeed).
    """

    site: str
    fault: type = ResilienceFault
    at_hit: int | None = None
    probability: float | None = None
    node: int | None = None
    max_fires: int = 1
    fires: int = field(default=0, compare=False)

    def __post_init__(self):
        if not self.site:
            raise FaultScheduleError("fault rule needs a site")
        if not (isinstance(self.fault, type)
                and issubclass(self.fault, ResilienceFault)):
            raise FaultScheduleError(
                f"rule fault must be a ResilienceFault subclass, "
                f"got {self.fault!r}"
            )
        if (self.at_hit is None) == (self.probability is None):
            raise FaultScheduleError(
                f"rule for {self.site!r} must set exactly one of "
                f"at_hit / probability"
            )
        if self.at_hit is not None and self.at_hit < 1:
            raise FaultScheduleError("at_hit is 1-based and must be >= 1")
        if self.probability is not None \
                and not 0.0 < self.probability <= 1.0:
            raise FaultScheduleError("probability must be in (0, 1]")

    def matches(self, site: str, node: int | None) -> bool:
        return (self.site == site
                and (self.node is None or self.node == node))

    def to_dict(self) -> dict:
        out = {"site": self.site, "fault": KIND_OF_FAULT[self.fault],
               "max_fires": self.max_fires}
        if self.node is not None:
            out["node"] = self.node
        if self.at_hit is not None:
            out["at_hit"] = self.at_hit
        else:
            out["probability"] = self.probability
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        kind = data.get("fault", "")
        if kind not in FAULT_KINDS:
            raise FaultScheduleError(
                f"unknown fault kind {kind!r} "
                f"(known: {', '.join(sorted(FAULT_KINDS))})"
            )
        return cls(
            site=data.get("site", ""),
            fault=FAULT_KINDS[kind],
            at_hit=data.get("at_hit"),
            probability=data.get("probability"),
            node=data.get("node"),
            max_fires=data.get("max_fires", 1),
        )


@dataclass
class FaultSchedule:
    """A seeded list of :class:`FaultRule`; JSON-serializable so the
    chaos runner can commit its schedule next to its report."""

    rules: list = field(default_factory=list)
    seed: int = 0

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(
            rules=[FaultRule.from_dict(r) for r in data.get("rules", [])],
            seed=data.get("seed", 0),
        )


class FaultInjector:
    """Evaluates a :class:`FaultSchedule` at named injection sites.

    One injector serves a whole cluster; components hold
    :meth:`bind`-scoped views that stamp their node id onto every hit.
    ``hit`` raises the rule's typed fault when a rule fires — the caller
    never checks a return value, faults propagate like any error.
    """

    def __init__(self, schedule: FaultSchedule | None = None):
        self._lock = threading.Lock()
        self.history: list[dict] = []   # every firing, in order
        self.hits: dict = {}            # (site, node) -> count
        self._rngs: dict = {}
        self.schedule = None
        if schedule is not None:
            self.arm(schedule)

    @property
    def armed(self) -> bool:
        return self.schedule is not None and bool(self.schedule.rules)

    def arm(self, schedule: FaultSchedule | None) -> None:
        """Install ``schedule``, resetting hit counters, RNGs, and rule
        fire counts (tests arm after setup so setup traffic never
        consumes scheduled hits)."""
        with self._lock:
            self.schedule = schedule
            self.hits.clear()
            self._rngs.clear()
            self.history.clear()
            if schedule is not None:
                for rule in schedule.rules:
                    rule.fires = 0

    def disarm(self) -> None:
        self.arm(None)

    def bind(self, **context) -> "ScopedInjector":
        """A view of this injector with ``context`` (typically
        ``node=<id>``) merged into every hit."""
        return ScopedInjector(self, context)

    def hit(self, site: str, **context) -> None:
        """Record one pass through ``site``; raises the scheduled typed
        fault if a rule fires."""
        if not self.armed:
            return
        node = context.get("node")
        with self._lock:
            stream = (site, node)
            count = self.hits.get(stream, 0) + 1
            self.hits[stream] = count
            fault = self._evaluate(site, node, count, context)
        if fault is not None:
            raise fault

    def _evaluate(self, site, node, count, context):
        for rule in self.schedule.rules:
            if rule.fires >= rule.max_fires or not rule.matches(site, node):
                continue
            if rule.at_hit is not None:
                fire = count == rule.at_hit
            else:
                fire = self._rng(site, node).random() < rule.probability
            if not fire:
                continue
            rule.fires += 1
            fault = rule.fault(site=site, node=node, context=context)
            kind = KIND_OF_FAULT[type(fault)]
            self.history.append({
                "site": site, "node": node, "hit": count, "fault": kind,
            })
            registry = get_registry()
            registry.counter("resilience.faults_injected").inc()
            registry.counter(f"resilience.faults.{kind}").inc()
            return fault
        return None

    def _rng(self, site: str, node: int | None) -> random.Random:
        key = (site, node)
        rng = self._rngs.get(key)
        if rng is None:
            # CRC32 keeps the stream seed stable across processes
            # (hash() of a str is salted per interpreter run)
            material = f"{self.schedule.seed}:{site}:{node}".encode()
            rng = random.Random(zlib.crc32(material))
            self._rngs[key] = rng
        return rng


class ScopedInjector:
    """A bound view: same injector, with base context pre-merged."""

    def __init__(self, injector: FaultInjector, context: dict):
        self.injector = injector
        self.context = dict(context)

    def hit(self, site: str, **context) -> None:
        self.injector.hit(site, **{**self.context, **context})

    def bind(self, **context) -> "ScopedInjector":
        return ScopedInjector(self.injector, {**self.context, **context})


#: Shared disarmed injector for components built without one.
NO_FAULTS = FaultInjector()
