"""Shared infrastructure: error taxonomy and configuration."""

from repro.common.config import ClusterConfig, CostModel, NodeConfig
from repro.common.errors import (
    AsterixError,
    BufferCacheError,
    CompilationError,
    DuplicateError,
    DuplicateKeyError,
    IdentifierError,
    InvalidArgumentError,
    MetadataError,
    OverflowError_,
    RuntimeError_,
    StorageError,
    SyntaxError_,
    TransactionError,
    TypeError_,
    UnknownEntityError,
)

__all__ = [
    "AsterixError",
    "BufferCacheError",
    "ClusterConfig",
    "CompilationError",
    "CostModel",
    "DuplicateError",
    "DuplicateKeyError",
    "IdentifierError",
    "InvalidArgumentError",
    "MetadataError",
    "NodeConfig",
    "OverflowError_",
    "RuntimeError_",
    "StorageError",
    "SyntaxError_",
    "TransactionError",
    "TypeError_",
    "UnknownEntityError",
]
