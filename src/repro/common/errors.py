"""Error taxonomy for the AsterixDB reproduction.

Apache AsterixDB reports errors with stable ``ASX####`` codes; the Couchbase
adoption (paper Section VII) forced a "major makeover in terms of error
handling and feedback" because research prototypes tend to cover only the
happy path.  This module is that makeover applied from day one: every
subsystem raises a subclass of :class:`AsterixError` carrying a numeric code
and a formatted message, so callers (and tests) can match on either.

This module is also the central **code registry**: every error class in the
system — including the ones defined next to their subsystem
(:mod:`repro.resilience.faults`, :mod:`repro.observability.metrics`) — must
carry a unique code inside one of the documented :data:`CODE_BANDS`.
``tests/common/test_error_registry.py`` enforces uniqueness, band
membership, and that every class documents itself with a docstring.
"""

from __future__ import annotations

#: The documented code bands.  A band is (lo, hi, category); every concrete
#: error class's ``code`` must fall in exactly one band, and the band must
#: match the subsystem that raises it.
CODE_BANDS = (
    (1000, 1099, "compilation (lexing, parsing, translation)"),
    (1100, 1199, "metadata / catalog"),
    (2000, 2099, "runtime expression evaluation"),
    (3000, 3099, "storage"),
    (3100, 3199, "transactions"),
    (3500, 3599, "resilience faults (repro.resilience.faults)"),
    (3900, 3999, "observability (repro.observability.metrics)"),
    (4000, 4099, "semantic analysis (repro.analysis.semantic)"),
    (4100, 4199, "plan/job verification (repro.analysis.plan_verifier)"),
)


class AsterixError(Exception):
    """Base class for all errors raised by this system.

    Attributes:
        code: stable numeric error code (rendered as ``ASX####``).
        message: human-readable description.
    """

    code = 0

    def __init__(self, message: str, *, code: int | None = None):
        if code is not None:
            self.code = code
        self.message = message
        super().__init__(f"ASX{self.code:04d}: {message}")


# --- compilation-time errors (1xxx) -------------------------------------

class SyntaxError_(AsterixError):
    """Query text failed to lex or parse."""

    code = 1001

    def __init__(self, message: str, *, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        where = f" at line {line}, column {column}" if line else ""
        super().__init__(f"Syntax error{where}: {message}")


class IdentifierError(AsterixError):
    """An identifier (dataset, type, index, variable...) cannot be resolved."""

    code = 1073


class TypeError_(AsterixError):
    """A value or expression violates the ADM type system."""

    code = 1002


class CompilationError(AsterixError):
    """The query is well-formed but cannot be compiled."""

    code = 1079


# --- metadata errors (11xx) ----------------------------------------------

class MetadataError(AsterixError):
    """Catalog inconsistency or invalid DDL."""

    code = 1100


class DuplicateError(MetadataError):
    """CREATE of an entity that already exists (without IF NOT EXISTS)."""

    code = 1101


class UnknownEntityError(MetadataError):
    """Reference to a dataverse/dataset/type/index that does not exist."""

    code = 1102


class InvalidIndexDDLError(MetadataError):
    """A CREATE INDEX statement is structurally invalid: an UNNEST (array)
    index declared with a non-btree TYPE, an array index without an UNNEST
    path, or an element field list that is empty after parsing."""

    code = 1103


# --- runtime errors (2xxx) -----------------------------------------------

class RuntimeError_(AsterixError):
    """An error raised while evaluating a query plan."""

    code = 2000


class InvalidArgumentError(RuntimeError_):
    """A builtin function received an argument outside its domain."""

    code = 2001


class OverflowError_(RuntimeError_):
    """Numeric overflow in a fixed-width ADM numeric type."""

    code = 2002


class DuplicateKeyError(RuntimeError_):
    """INSERT of a primary key that already exists in the dataset."""

    code = 2011


# --- storage errors (3xxx) -----------------------------------------------

class StorageError(AsterixError):
    """Low-level storage failure (page, file, component lifecycle)."""

    code = 3000


class BufferCacheError(StorageError):
    """Buffer cache misuse: over-pinning, unpinning an unpinned page, ..."""

    code = 3001


class TransactionError(AsterixError):
    """Transaction subsystem failure (lock timeout, aborted txn reuse...)."""

    code = 3100


class TransactionStateError(TransactionError):
    """Illegal entity-transaction state transition (e.g. commit after
    abort).  Abort itself is idempotent — re-aborting a finished
    transaction is a no-op, which lets retry paths abort defensively —
    but commit on a finished transaction raises this."""

    code = 3101


# --- semantic analysis errors (40xx) --------------------------------------

class SemanticError(AsterixError):
    """A statement is well-formed syntax but semantically invalid; raised
    by the pre-translation analyzer (:mod:`repro.analysis.semantic`) so a
    bad statement never reaches job generation."""

    code = 4000


class UndefinedVariableError(SemanticError, IdentifierError):
    """An expression references a variable bound nowhere in scope."""

    code = 4001


class UnknownDatasetError(SemanticError, IdentifierError):
    """A FROM term / DML target names a dataset the catalog doesn't have."""

    code = 4002


class UnknownFunctionError(SemanticError, IdentifierError):
    """A call names a function that is neither scalar nor aggregate."""

    code = 4003


class UnknownFieldError(SemanticError, TypeError_):
    """Field access on a CLOSED type that does not declare the field."""

    code = 4004


class TypeMismatchError(SemanticError, TypeError_):
    """An expression is statically ill-typed against the ADM schema
    (e.g. field access on a declared primitive-typed field)."""

    code = 4005


class ArityError(SemanticError):
    """A builtin function call has the wrong number of arguments."""

    code = 4006


class DuplicateAliasError(SemanticError):
    """Two FROM terms in one query bind the same alias."""

    code = 4007


# --- plan/job verification errors (41xx) -----------------------------------

class PlanInvariantError(AsterixError):
    """An Algebricks logical plan violates a structural invariant
    (def-before-use, schema consistency, jobgen contracts).  When raised
    mid-rewrite, :attr:`rule` names the rule that broke the plan."""

    code = 4100

    def __init__(self, message: str, *, rule: str | None = None,
                 invariant: str = ""):
        self.rule = rule
        self.invariant = invariant
        blame = f" [after rule '{rule}']" if rule else ""
        tag = f" ({invariant})" if invariant else ""
        super().__init__(f"plan invariant violated{tag}{blame}: {message}")


class JobInvariantError(AsterixError):
    """A generated Hyracks job violates a structural or physical-property
    invariant (dangling edges, non-dense ports, unestablished
    partitioning/ordering claims)."""

    code = 4101


# --- resilience faults (35xx) live in repro.resilience.faults -------------
# --- observability errors (39xx) live in repro.observability.metrics ------


def iter_error_classes():
    """Yield every error class in the system (the registry view).

    Imports the subsystem modules that define error classes outside this
    file, then walks the :class:`AsterixError` subclass tree.
    """
    import repro.observability.metrics  # noqa: F401  (defines MetricError)
    import repro.resilience.faults      # noqa: F401  (defines 35xx faults)

    seen = set()
    stack = [AsterixError]
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        yield cls
        stack.extend(cls.__subclasses__())


def code_table() -> dict:
    """code -> error class, for every registered class.

    Raises ``ValueError`` on a duplicate code, so importing callers (and
    the registry test) notice a collision immediately.
    """
    table: dict[int, type] = {}
    for cls in iter_error_classes():
        if cls is AsterixError:
            continue
        code = cls.__dict__.get("code")
        if code is None:
            continue             # inherits its parent's code (same band)
        if code in table:
            raise ValueError(
                f"duplicate error code {code}: {table[code].__name__} "
                f"and {cls.__name__}"
            )
        table[code] = cls
    return table


def band_of(code: int):
    """The (lo, hi, category) band containing ``code``, or None."""
    for lo, hi, category in CODE_BANDS:
        if lo <= code <= hi:
            return (lo, hi, category)
    return None
