"""Error taxonomy for the AsterixDB reproduction.

Apache AsterixDB reports errors with stable ``ASX####`` codes; the Couchbase
adoption (paper Section VII) forced a "major makeover in terms of error
handling and feedback" because research prototypes tend to cover only the
happy path.  This module is that makeover applied from day one: every
subsystem raises a subclass of :class:`AsterixError` carrying a numeric code
and a formatted message, so callers (and tests) can match on either.
"""

from __future__ import annotations


class AsterixError(Exception):
    """Base class for all errors raised by this system.

    Attributes:
        code: stable numeric error code (rendered as ``ASX####``).
        message: human-readable description.
    """

    code = 0

    def __init__(self, message: str, *, code: int | None = None):
        if code is not None:
            self.code = code
        self.message = message
        super().__init__(f"ASX{self.code:04d}: {message}")


# --- compilation-time errors (1xxx) -------------------------------------

class SyntaxError_(AsterixError):
    """Query text failed to lex or parse."""

    code = 1001

    def __init__(self, message: str, *, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        where = f" at line {line}, column {column}" if line else ""
        super().__init__(f"Syntax error{where}: {message}")


class IdentifierError(AsterixError):
    """An identifier (dataset, type, index, variable...) cannot be resolved."""

    code = 1073


class TypeError_(AsterixError):
    """A value or expression violates the ADM type system."""

    code = 1002


class CompilationError(AsterixError):
    """The query is well-formed but cannot be compiled."""

    code = 1079


# --- metadata errors (11xx) ----------------------------------------------

class MetadataError(AsterixError):
    """Catalog inconsistency or invalid DDL."""

    code = 1100


class DuplicateError(MetadataError):
    """CREATE of an entity that already exists (without IF NOT EXISTS)."""

    code = 1101


class UnknownEntityError(MetadataError):
    """Reference to a dataverse/dataset/type/index that does not exist."""

    code = 1102


# --- runtime errors (2xxx) -----------------------------------------------

class RuntimeError_(AsterixError):
    """An error raised while evaluating a query plan."""

    code = 2000


class InvalidArgumentError(RuntimeError_):
    """A builtin function received an argument outside its domain."""

    code = 2001


class OverflowError_(RuntimeError_):
    """Numeric overflow in a fixed-width ADM numeric type."""

    code = 2002


class DuplicateKeyError(RuntimeError_):
    """INSERT of a primary key that already exists in the dataset."""

    code = 2011


# --- storage errors (3xxx) -----------------------------------------------

class StorageError(AsterixError):
    """Low-level storage failure (page, file, component lifecycle)."""

    code = 3000


class BufferCacheError(StorageError):
    """Buffer cache misuse: over-pinning, unpinning an unpinned page, ..."""

    code = 3001


class TransactionError(AsterixError):
    """Transaction subsystem failure (lock timeout, aborted txn reuse...)."""

    code = 3100


class TransactionStateError(TransactionError):
    """Illegal entity-transaction state transition (e.g. commit after
    abort).  Abort itself is idempotent — re-aborting a finished
    transaction is a no-op, which lets retry paths abort defensively —
    but commit on a finished transaction raises this."""

    code = 3101


# --- resilience faults (35xx) live in repro.resilience.faults ------------
