"""Cluster and node configuration.

The paper's Figure 2 describes how each node in an AsterixDB cluster divides
its memory among ingestion buffering (LSM memory components), the buffer
cache, and working memory for memory-intensive operators.  This module holds
those knobs plus the simulated-I/O cost model used by the in-process cluster
(see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field


DEFAULT_PAGE_SIZE = 4096
DEFAULT_FRAME_SIZE = 128          # tuples per runtime frame


@dataclass
class CostModel:
    """Simulated time costs, in microseconds.

    The in-process cluster charges these per event; elapsed time for a
    parallel stage is the max over partitions of accumulated charges, which
    is what lets a single-threaded simulation show scale-out shape.
    """

    page_read_us: float = 100.0       # random page read from "disk"
    page_write_us: float = 100.0
    seq_page_read_us: float = 30.0    # sequential read (scans, merges)
    seq_page_write_us: float = 30.0
    tuple_cpu_us: float = 0.5         # per-tuple operator processing
    network_tuple_us: float = 1.0     # per-tuple cost over a connector
    hash_us: float = 0.2              # per hash computation
    compare_us: float = 0.1           # per key comparison


@dataclass
class NodeConfig:
    """Per-node resource budgets (Figure 2)."""

    num_io_devices: int = 1
    buffer_cache_pages: int = 256
    memory_component_pages: int = 64   # LSM memory-component budget/dataset
    sort_memory_frames: int = 32       # working memory per sort
    join_memory_frames: int = 32       # working memory per join
    group_memory_frames: int = 32      # working memory per group-by
    #: Emulated device latency added to every physical page read/write, in
    #: *real* microseconds (a ``time.sleep`` that releases the GIL).  Zero
    #: by default; benchmarks raise it to make the wall-clock behave like a
    #: spinning disk so I/O overlap across nodes becomes measurable.  It
    #: never affects the simulated clock.
    io_latency_us: float = 0.0


@dataclass
class ExecutorConfig:
    """How the cluster controller runs Hyracks jobs.

    ``mode`` selects between the parallel executor (the default: the
    partitions of each stage run concurrently, one worker per node, with
    per-node execution serialized in partition order so the simulated
    clock and all node-local state stay deterministic) and the serial
    fallback (same stage decomposition, executed inline — used by tests
    that compare against the parallel executor).  ``pipelining`` streams
    ``frame_size``-tuple frames through fused chains of streaming
    operators instead of materializing every operator's full output;
    turning it off reproduces the materialize-everything model.
    """

    mode: str = "parallel"            # "parallel" | "serial"
    workers: int | None = None        # None = one worker per node
    pipelining: bool = True

    @property
    def parallel(self) -> bool:
        return self.mode == "parallel"


@dataclass
class ResilienceConfig:
    """Failure handling knobs (docs/RESILIENCE.md).

    Job-level failure detection retries a failed Hyracks job up to
    ``max_job_attempts`` extra times with capped exponential backoff
    (``retry_base_us * retry_multiplier**(k-1)``, capped at
    ``retry_cap_us``) on the cluster's *simulated* clock — no wall-clock
    sleeping.  ``detection_delay_us`` is the simulated failure-detection
    latency charged before a crashed node restarts;
    ``feed_retry_attempts`` bounds how often one pump re-pulls a feed
    source (or re-applies one record) before giving up for the round.
    """

    max_job_attempts: int = 3
    retry_base_us: float = 1000.0
    retry_multiplier: float = 2.0
    retry_cap_us: float = 64000.0
    detection_delay_us: float = 500.0
    feed_retry_attempts: int = 4


@dataclass
class ClusterConfig:
    """Whole-cluster configuration: topology plus per-node budgets."""

    num_nodes: int = 2
    partitions_per_node: int = 2
    page_size: int = DEFAULT_PAGE_SIZE
    frame_size: int = DEFAULT_FRAME_SIZE
    node: NodeConfig = field(default_factory=NodeConfig)
    cost: CostModel = field(default_factory=CostModel)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    @property
    def num_partitions(self) -> int:
        return self.num_nodes * self.partitions_per_node
