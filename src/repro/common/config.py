"""Cluster and node configuration.

The paper's Figure 2 describes how each node in an AsterixDB cluster divides
its memory among ingestion buffering (LSM memory components), the buffer
cache, and working memory for memory-intensive operators.  This module holds
those knobs plus the simulated-I/O cost model used by the in-process cluster
(see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field


DEFAULT_PAGE_SIZE = 4096
DEFAULT_FRAME_SIZE = 128          # tuples per runtime frame


@dataclass
class CostModel:
    """Simulated time costs, in microseconds.

    The in-process cluster charges these per event; elapsed time for a
    parallel stage is the max over partitions of accumulated charges, which
    is what lets a single-threaded simulation show scale-out shape.
    """

    page_read_us: float = 100.0       # random page read from "disk"
    page_write_us: float = 100.0
    seq_page_read_us: float = 30.0    # sequential read (scans, merges)
    seq_page_write_us: float = 30.0
    tuple_cpu_us: float = 0.5         # per-tuple operator processing
    network_tuple_us: float = 1.0     # per-tuple cost over a connector
    hash_us: float = 0.2              # per hash computation
    compare_us: float = 0.1           # per key comparison


@dataclass
class NodeConfig:
    """Per-node resource budgets (Figure 2)."""

    num_io_devices: int = 1
    buffer_cache_pages: int = 256
    memory_component_pages: int = 64   # LSM memory-component budget/dataset
    sort_memory_frames: int = 32       # default sort grant request
    join_memory_frames: int = 32       # default join grant request
    group_memory_frames: int = 32      # default group-by grant request
    #: One node-wide working-memory budget (Figure 2's "working memory"
    #: box), arbitrated by :class:`repro.hyracks.memory.MemoryGovernor`
    #: across every concurrent operator, query admission, and feed batch
    #: on the node.  The per-operator ``*_memory_frames`` knobs above are
    #: *grant requests* against this pool, not private allocations: alone
    #: on the node an operator receives its full request (so behaviour is
    #: identical to the pre-governor fixed budgets); under contention the
    #: grant is reduced and the operator spills more.
    query_memory_frames: int = 4096
    #: Frames reserved per admitted query on each node; the reservation
    #: guarantees every operator of an admitted query at least this much,
    #: so admitted queries always make progress (no mid-query deadlock).
    query_admission_frames: int = 4
    #: Frames a feed pump holds per node while ingesting one batch —
    #: backpressure: heavy queries holding working memory delay the pump
    #: instead of letting ingestion buffering grow without bound.
    feed_memory_frames: int = 4
    #: Cap, in *wall* milliseconds, on how long an admission (or feed)
    #: request queues for frames before failing with a typed
    #: ``MemoryPressureFault`` (ASX3505).  Queueing only ever happens
    #: under real thread concurrency, so this is a wall-clock knob; it
    #: never touches the simulated clock.
    admission_timeout_ms: float = 2000.0
    #: Emulated device latency added to every physical page read/write, in
    #: *real* microseconds (a ``time.sleep`` that releases the GIL).  Zero
    #: by default; benchmarks raise it to make the wall-clock behave like a
    #: spinning disk so I/O overlap across nodes becomes measurable.  It
    #: never affects the simulated clock.
    io_latency_us: float = 0.0


@dataclass
class ExecutorConfig:
    """How the cluster controller runs Hyracks jobs.

    ``mode`` selects between the parallel executor (the default: the
    partitions of each stage run concurrently, one worker per node, with
    per-node execution serialized in partition order so the simulated
    clock and all node-local state stay deterministic) and the serial
    fallback (same stage decomposition, executed inline — used by tests
    that compare against the parallel executor).  ``pipelining`` streams
    ``frame_size``-tuple frames through fused chains of streaming
    operators instead of materializing every operator's full output;
    turning it off reproduces the materialize-everything model.

    ``compile_expressions`` makes the cluster compile every operator's
    scalar expressions, predicates, and aggregate arguments into Python
    closures once per job (``OperatorDescriptor.prepare``) instead of
    interpreting expression trees per tuple.  Results, the simulated
    clock, and per-operator tuple counts are byte-identical either way
    (the equivalence suite asserts this); only wall-clock time differs.
    See docs/PERFORMANCE.md.

    ``batch_execution`` runs the operator hot loops over whole frames
    instead of tuple-at-a-time: sorts compile their composite key once
    per run and merge decorated (precomputed-key) streams, aggregates
    evaluate their argument over the frame and fold it through
    ``step_many``, and group-by batches key bytes through the job key
    cache.  Same invariant as ``compile_expressions``: identical
    results, simulated clock, and tuple counts with the toggle on or
    off — only wall-clock time may differ.
    """

    mode: str = "parallel"            # "parallel" | "serial"
    workers: int | None = None        # None = one worker per node
    pipelining: bool = True
    compile_expressions: bool = True
    batch_execution: bool = True

    @property
    def parallel(self) -> bool:
        return self.mode == "parallel"


@dataclass
class ResilienceConfig:
    """Failure handling knobs (docs/RESILIENCE.md).

    Job-level failure detection retries a failed Hyracks job up to
    ``max_job_attempts`` extra times with capped exponential backoff
    (``retry_base_us * retry_multiplier**(k-1)``, capped at
    ``retry_cap_us``) on the cluster's *simulated* clock — no wall-clock
    sleeping.  ``detection_delay_us`` is the simulated failure-detection
    latency charged before a crashed node restarts;
    ``feed_retry_attempts`` bounds how often one pump re-pulls a feed
    source (or re-applies one record) before giving up for the round.
    """

    max_job_attempts: int = 3
    retry_base_us: float = 1000.0
    retry_multiplier: float = 2.0
    retry_cap_us: float = 64000.0
    detection_delay_us: float = 500.0
    feed_retry_attempts: int = 4


@dataclass
class ClusterConfig:
    """Whole-cluster configuration: topology plus per-node budgets."""

    num_nodes: int = 2
    partitions_per_node: int = 2
    page_size: int = DEFAULT_PAGE_SIZE
    frame_size: int = DEFAULT_FRAME_SIZE
    node: NodeConfig = field(default_factory=NodeConfig)
    cost: CostModel = field(default_factory=CostModel)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    @property
    def num_partitions(self) -> int:
        return self.num_nodes * self.partitions_per_node
