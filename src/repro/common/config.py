"""Cluster and node configuration.

The paper's Figure 2 describes how each node in an AsterixDB cluster divides
its memory among ingestion buffering (LSM memory components), the buffer
cache, and working memory for memory-intensive operators.  This module holds
those knobs plus the simulated-I/O cost model used by the in-process cluster
(see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field


DEFAULT_PAGE_SIZE = 4096
DEFAULT_FRAME_SIZE = 128          # tuples per runtime frame


@dataclass
class CostModel:
    """Simulated time costs, in microseconds.

    The in-process cluster charges these per event; elapsed time for a
    parallel stage is the max over partitions of accumulated charges, which
    is what lets a single-threaded simulation show scale-out shape.
    """

    page_read_us: float = 100.0       # random page read from "disk"
    page_write_us: float = 100.0
    seq_page_read_us: float = 30.0    # sequential read (scans, merges)
    seq_page_write_us: float = 30.0
    tuple_cpu_us: float = 0.5         # per-tuple operator processing
    network_tuple_us: float = 1.0     # per-tuple cost over a connector
    hash_us: float = 0.2              # per hash computation
    compare_us: float = 0.1           # per key comparison


@dataclass
class NodeConfig:
    """Per-node resource budgets (Figure 2)."""

    num_io_devices: int = 1
    buffer_cache_pages: int = 256
    memory_component_pages: int = 64   # LSM memory-component budget/dataset
    sort_memory_frames: int = 32       # working memory per sort
    join_memory_frames: int = 32       # working memory per join
    group_memory_frames: int = 32      # working memory per group-by


@dataclass
class ClusterConfig:
    """Whole-cluster configuration: topology plus per-node budgets."""

    num_nodes: int = 2
    partitions_per_node: int = 2
    page_size: int = DEFAULT_PAGE_SIZE
    frame_size: int = DEFAULT_FRAME_SIZE
    node: NodeConfig = field(default_factory=NodeConfig)
    cost: CostModel = field(default_factory=CostModel)

    @property
    def num_partitions(self) -> int:
        return self.num_nodes * self.partitions_per_node
