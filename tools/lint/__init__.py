"""The repository's own static analyzer (``python -m tools.lint``).

Generic linters cannot know that this codebase simulates its clock, that
cluster nodes serialize shared-state mutation through ``node.lock``, or
that the resilience layer's faults must never be silently swallowed —
those rules exist only because of how this system is built (deterministic
fault injection, serial-equivalent parallel execution).  This package
checks them with Python's ``ast`` module.  See docs/STATIC_ANALYSIS.md
for the rule catalogue and how to add a checker.

Deliberately standalone: imports nothing from ``repro`` so it can lint a
broken tree.
"""

from tools.lint.checkers import CHECKERS, Finding, lint_file, lint_source
from tools.lint.cli import main

__all__ = ["CHECKERS", "Finding", "lint_file", "lint_source", "main"]
