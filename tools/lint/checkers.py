"""Project-specific AST checkers.

Each checker is a function ``(path, tree, source_lines) -> [Finding]``
registered in :data:`CHECKERS` with the path prefixes it applies to
(``()`` = every file).  Suppress a single line with a trailing
``# lint: allow-<rule>`` comment.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass

#: Subtrees whose code runs under the simulated cluster clock.  Real
#: wall-clock or unseeded randomness there breaks the determinism the
#: fault-injection harness (PR 3) depends on.
SIMULATED_CLOCK_PATHS = (
    "src/repro/hyracks/",
    "src/repro/resilience/",
    "src/repro/txn/",
    "src/repro/extensions/feeds",
)

#: Subtrees with retry loops that must not swallow injected faults.
RETRY_PATHS = (
    "src/repro/resilience/",
    "src/repro/txn/",
    "src/repro/extensions/feeds",
)

#: Wall-clock calls forbidden in simulated-clock paths.  time.perf_counter
#: is allowed: it measures *real* elapsed work for profiles/metrics and
#: never feeds back into simulated behaviour.
_WALLCLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "sleep"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: ``random.<fn>()`` uses the shared, unseeded module RNG; a constructed
#: ``random.Random(seed)`` instance is the sanctioned alternative.
_RANDOM_MODULE_OK = {"Random", "SystemRandom"}


@dataclass
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: " \
               f"[{self.rule}] {self.message}"


def _allowed(source_lines, lineno: int, rule: str) -> bool:
    """Is the finding suppressed by a `# lint: allow-<rule>` comment?"""
    if 1 <= lineno <= len(source_lines):
        return f"lint: allow-{rule}" in source_lines[lineno - 1]
    return False


def _dotted(node: ast.AST):
    """``a.b`` -> ("a", "b") for Name-rooted attribute access."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return (node.value.id, node.attr)
    return None


# --- checker: no wall-clock / unseeded randomness in simulated paths --------

def check_wallclock(path: str, tree: ast.AST, source_lines) -> list:
    """no-wallclock: time.time/datetime.now/random.random etc. in
    simulated-clock subtrees (the cluster clock is logical there)."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        ref = _dotted(node.func)
        if ref is None:
            continue
        bad = None
        if ref in _WALLCLOCK_CALLS:
            bad = f"{ref[0]}.{ref[1]}() reads the wall clock"
        elif ref[0] == "random" and ref[1] not in _RANDOM_MODULE_OK:
            bad = (f"random.{ref[1]}() uses the shared unseeded RNG; "
                   f"use a seeded random.Random(seed) instance")
        if bad and not _allowed(source_lines, node.lineno, "wallclock"):
            findings.append(Finding(
                path, node.lineno, node.col_offset, "no-wallclock",
                f"{bad} inside a simulated-clock path",
            ))
    return findings


# --- checker: node shared state only under node.lock ------------------------

def _is_node_ref(node: ast.AST) -> bool:
    """``node`` or ``self.node`` / ``<x>.node``."""
    if isinstance(node, ast.Name) and node.id == "node":
        return True
    return isinstance(node, ast.Attribute) and node.attr == "node"


def _is_node_lock_with(item: ast.withitem) -> bool:
    """``with node.lock:`` / ``with self.node.lock:``."""
    expr = item.context_expr
    return isinstance(expr, ast.Attribute) and expr.attr == "lock" \
        and _is_node_ref(expr.value)


class _NodeLockVisitor(ast.NodeVisitor):
    def __init__(self, path, source_lines):
        self.path = path
        self.source_lines = source_lines
        self.depth = 0          # nesting inside `with node.lock`
        self.findings = []

    def visit_With(self, node: ast.With):
        locked = any(_is_node_lock_with(item) for item in node.items)
        self.depth += locked
        self.generic_visit(node)
        self.depth -= locked

    def _flag(self, target: ast.AST, lineno: int, col: int):
        if isinstance(target, ast.Attribute) and _is_node_ref(target.value) \
                and target.attr != "lock" and self.depth == 0 \
                and not _allowed(self.source_lines, lineno, "node-lock"):
            self.findings.append(Finding(
                self.path, lineno, col, "node-lock",
                f"mutation of shared node state ({ast.unparse(target)}) "
                f"outside a `with node.lock` block",
            ))

    def visit_Assign(self, node: ast.Assign):
        for target in node.targets:
            self._flag(target, node.lineno, node.col_offset)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign):
        self._flag(node.target, node.lineno, node.col_offset)
        self.generic_visit(node)


def check_node_lock(path: str, tree: ast.AST, source_lines) -> list:
    """node-lock: assignments to ``node.<attr>`` / ``self.node.<attr>``
    must sit inside a ``with node.lock:`` block (streaming operators run
    on several node worker threads at once)."""
    visitor = _NodeLockVisitor(path, source_lines)
    visitor.visit(tree)
    return visitor.findings


# --- checker: no swallowed faults in retry paths ----------------------------

def _swallows(handler: ast.ExceptHandler) -> bool:
    """A handler swallows when its body neither raises nor does any real
    work (only pass/continue/constant-expression statements)."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant):
            continue   # docstring / ellipsis
        return False
    return True


def _catches_broad_exception(node: ast.ExceptHandler) -> bool:
    """True when the handler names ``Exception`` (alone or in a tuple) —
    broad enough to absorb injected resilience/memory-pressure faults."""
    types = (node.type.elts if isinstance(node.type, ast.Tuple)
             else [node.type])
    return any(isinstance(t, ast.Name) and t.id == "Exception"
               for t in types)


def check_swallowed_faults(path: str, tree: ast.AST, source_lines) -> list:
    """swallowed-fault: bare ``except:`` and ``except Exception``
    anywhere; in retry paths, any handler that silently discards the
    exception (body of pass/continue only) — injected faults must
    surface or be deliberately re-raised."""
    findings = []
    in_retry_path = any(p in path for p in RETRY_PATHS)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _allowed(source_lines, node.lineno, "swallow"):
            continue
        if node.type is None:
            findings.append(Finding(
                path, node.lineno, node.col_offset, "swallowed-fault",
                "bare `except:` catches injected faults and "
                "KeyboardInterrupt alike; name the exception type",
            ))
        elif _catches_broad_exception(node):
            findings.append(Finding(
                path, node.lineno, node.col_offset, "swallowed-fault",
                "`except Exception` absorbs injected faults (resilience, "
                "memory pressure) alongside real errors; narrow to the "
                "specific types or annotate `# lint: allow-swallow`",
            ))
        elif in_retry_path and _swallows(node):
            caught = ast.unparse(node.type)
            findings.append(Finding(
                path, node.lineno, node.col_offset, "swallowed-fault",
                f"`except {caught}` silently swallows the exception in a "
                f"retry path; re-raise, handle, or record it",
            ))
    return findings


# --- checker: temp files must be paired with their release ------------------

def _function_calls(func: ast.AST):
    """Attribute/Name call targets inside ``func``, excluding nested
    function bodies (a release in a nested closure isn't a release on
    this function's paths)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue                   # don't descend into nested scopes
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                yield node, node.func.attr
            elif isinstance(node.func, ast.Name):
                yield node, node.func.id
        stack.extend(ast.iter_child_nodes(node))


def check_temp_pairing(path: str, tree: ast.AST, source_lines) -> list:
    """temp-pairing: in operator/runtime code, a function that creates a
    temp file must also arrange its release on the same function's
    paths — ``make_temp_file`` pairs with ``release_temp_file``, and a
    ``RunFileWriter`` must reach ``finish()`` (which transfers ownership
    to the reader that deletes the file).  The sanctioned
    ownership-transfer points suppress with ``# lint: allow-temp-pairing``.
    """
    findings = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        makes, writers = [], []
        names = set()
        for call, name in _function_calls(func):
            names.add(name)
            if name == "make_temp_file":
                makes.append(call)
            elif name == "RunFileWriter":
                writers.append(call)
        for call in makes:
            if "release_temp_file" in names:
                continue
            if _allowed(source_lines, call.lineno, "temp-pairing"):
                continue
            findings.append(Finding(
                path, call.lineno, call.col_offset, "temp-pairing",
                f"make_temp_file in `{func.name}` without a "
                f"release_temp_file on the same function's paths; the "
                f"file leaks if this function is the owner",
            ))
        for call in writers:
            if "finish" in names:
                continue
            if _allowed(source_lines, call.lineno, "temp-pairing"):
                continue
            findings.append(Finding(
                path, call.lineno, call.col_offset, "temp-pairing",
                f"RunFileWriter in `{func.name}` never reaches finish(); "
                f"the temp file has no reader to delete it",
            ))
    return findings


# --- checker: no per-tuple dispatch in the operator runtime -----------------

def _per_tuple_calls(loop: ast.AST):
    """Calls inside ``loop``'s body that dispatch per tuple: any
    ``<x>.step(...)`` (the batched fold is ``step_many``) or
    ``order_key(...)`` (the batched form is ``compile_order_key``),
    excluding nested loops — the inner loop reports them itself."""
    stack = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.For, ast.While, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "step":
                yield node, "AggregateState.step"
            elif isinstance(func, ast.Name) and func.id == "order_key":
                yield node, "order_key"
            elif isinstance(func, ast.Attribute) \
                    and func.attr == "order_key":
                yield node, "order_key"
        stack.extend(ast.iter_child_nodes(node))


def check_per_tuple_dispatch(path: str, tree: ast.AST, source_lines) -> list:
    """per-tuple: a ``for``/``while`` loop in the operator runtime calling
    ``AggregateState.step`` or ``order_key`` once per iteration — use the
    batched ``step_many`` / ``compile_order_key`` forms (ISSUE-7).  The
    per-tuple reference paths kept for the ``batch_execution=False``
    toggle suppress with ``# lint: allow-per-tuple``."""
    findings = []
    seen = set()
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for call, what in _per_tuple_calls(loop):
            spot = (call.lineno, call.col_offset)
            if spot in seen:
                continue
            seen.add(spot)
            if _allowed(source_lines, call.lineno, "per-tuple"):
                continue
            findings.append(Finding(
                path, call.lineno, call.col_offset, "per-tuple",
                f"{what} called once per loop iteration; batch the frame "
                f"through step_many/compile_order_key instead",
            ))
    return findings


# --- checker: unused module-level imports -----------------------------------

def check_unused_imports(path: str, tree: ast.AST, source_lines) -> list:
    """unused-import: a module-level import never referenced in the file.
    __init__.py files are exempt (imports there are re-exports)."""
    if path.endswith("__init__.py"):
        return []
    imported = {}        # bound name -> (lineno, col, shown name)
    for node in tree.body if isinstance(tree, ast.Module) else []:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imported[bound] = (node.lineno, node.col_offset, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue    # used by the compiler, not by name
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imported[bound] = (node.lineno, node.col_offset, alias.name)
    if not imported:
        return []
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)      # __all__ entries, doctest strings
    findings = []
    for bound, (lineno, col, shown) in sorted(imported.items(),
                                              key=lambda kv: kv[1][0]):
        if bound not in used and not _allowed(source_lines, lineno,
                                              "unused-import") \
                and "noqa" not in source_lines[lineno - 1]:
            findings.append(Finding(
                path, lineno, col, "unused-import",
                f"`{shown}` is imported but never used",
            ))
    return findings


#: rule registry: (checker, path prefixes it applies to; () = all files)
CHECKERS = (
    (check_wallclock, SIMULATED_CLOCK_PATHS),
    (check_node_lock, ("src/repro/hyracks/",)),
    (check_temp_pairing, ("src/repro/hyracks/", "src/repro/storage/")),
    (check_swallowed_faults, ()),
    (check_unused_imports, ()),
    (check_per_tuple_dispatch, ("src/repro/hyracks/",)),
)


def lint_source(source: str, path: str = "<string>",
                checkers=CHECKERS) -> list:
    """Lint one source string as if it lived at ``path``."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings = []
    for checker, prefixes in checkers:
        if prefixes and not any(p in path for p in prefixes):
            continue
        findings.extend(checker(path, tree, lines))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col))


def lint_file(path: str, checkers=CHECKERS) -> list:
    with open(path, encoding="utf-8") as f:
        return lint_source(f.read(), path, checkers)
