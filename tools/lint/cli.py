"""Command line driver: ``python -m tools.lint [paths] [-o report.json]``.

Walks the given files/directories (default ``src/repro``), runs every
registered checker, prints human-readable findings, optionally writes a
JSON report (the CI artifact), and exits non-zero when anything fired.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from tools.lint.checkers import CHECKERS, lint_file


def iter_python_files(paths):
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.lint",
        description="Project-specific static checks (docs/STATIC_ANALYSIS.md)",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint")
    parser.add_argument("-o", "--output", default=None,
                        help="write a JSON report here")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding output")
    args = parser.parse_args(argv)

    findings = []
    files = 0
    for path in iter_python_files(args.paths):
        files += 1
        findings.extend(lint_file(path))

    if not args.quiet:
        for finding in findings:
            print(finding.render())
        print(f"{files} file(s) checked, {len(findings)} finding(s), "
              f"{len(CHECKERS)} checker(s)")

    if args.output:
        report = {
            "files_checked": files,
            "checkers": [checker.__name__ for checker, _ in CHECKERS],
            "findings": [f.to_dict() for f in findings],
        }
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
