#!/usr/bin/env python
"""Benchmark runner: wall-clock + simulated time, serial vs parallel.

Runs a small suite of end-to-end workloads against the embedded instance
and writes a JSON report (default ``BENCH_PR7.json``) with, for each
benchmark, wall-clock seconds and the simulated-clock microseconds, plus
a head-to-head of the serial materialize-everything executor against the
pipelined parallel one on a scan/sort-heavy multi-partition job, a
fault-free vs fault-injected comparison of the same query+ingest
workload (the resilience tax: retries, a node restart with WAL replay,
and simulated backoff, with results verified identical), and a
memory-pressure sweep: concurrent spilled sorts under a shrinking
node-level memory-governor budget (reduced grants, merge passes, spill
volume, zero leaked run files).

The head-to-head runs with ``NodeConfig.io_latency_us`` set, emulating a
device where every page touch costs real microseconds (the sleep releases
the GIL, so the parallel executor overlaps it across nodes) — wall-clock
differs, the simulated clock and the result tuples must not.

Usage::

    PYTHONPATH=src python tools/bench_runner.py --quick
    PYTHONPATH=src python tools/bench_runner.py --quick -o out.json

``--quick`` trims dataset sizes and repetitions for CI smoke runs; the
default (full) mode uses larger datasets for more stable figures.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import connect                                    # noqa: E402
from repro.common.config import (                            # noqa: E402
    ClusterConfig,
    ExecutorConfig,
    NodeConfig,
)

SCHEMA = """
CREATE TYPE UserType AS { id: int, alias: string, age: int };
CREATE TYPE MessageType AS { messageId: int, authorId: int,
                             message: string };
CREATE DATASET Users(UserType) PRIMARY KEY id;
CREATE DATASET Messages(MessageType) PRIMARY KEY messageId;
CREATE INDEX byAge ON Users(age);
"""


def load_data(db, n_users: int, n_messages: int) -> None:
    for i in range(n_users):
        db.cluster.insert_record("Default.Users", {
            "id": i, "alias": f"u{i}", "age": 18 + i % 40,
        })
    for i in range(n_messages):
        db.cluster.insert_record("Default.Messages", {
            "messageId": i, "authorId": i % max(1, n_users),
            "message": f"msg-{i} " + "x" * (i % 40),
        })
    db.flush_dataset("Users")
    db.flush_dataset("Messages")


QUERY_BENCHMARKS = [
    ("scan_filter",
     "SELECT VALUE u.alias FROM Users u WHERE u.age > 40;"),
    ("secondary_index_lookup",
     "SELECT VALUE u.alias FROM Users u WHERE u.age = 25;"),
    ("sort_limit",
     "SELECT VALUE m.messageId FROM Messages m "
     "ORDER BY m.message DESC LIMIT 20;"),
    ("join_groupby",
     "SELECT age, COUNT(*) AS n "
     "FROM Users u JOIN Messages m ON m.authorId = u.id "
     "GROUP BY u.age AS age ORDER BY age;"),
    # ISSUE-7 micro-benchmarks: a full (no-LIMIT) multi-field external
    # sort and a multi-aggregate group-by, the two paths the batched
    # execution layer rewrote
    ("sort_heavy",
     "SELECT VALUE m.messageId FROM Messages m "
     "ORDER BY m.authorId, m.messageId DESC;"),
    ("group_heavy",
     "SELECT authorId, COUNT(*) AS n, MIN(m.messageId) AS lo, "
     "MAX(m.messageId) AS hi, SUM(m.messageId) AS total "
     "FROM Messages m GROUP BY m.authorId AS authorId "
     "ORDER BY authorId;"),
]


def run_query_benchmarks(base_dir: str, quick: bool) -> list:
    n_users = 200 if quick else 1000
    n_messages = 1000 if quick else 8000
    repeats = 2 if quick else 5
    config = ClusterConfig(num_nodes=2, partitions_per_node=2,
                           node=NodeConfig(buffer_cache_pages=256))
    results = []
    with connect(os.path.join(base_dir, "queries"), config) as db:
        db.execute(SCHEMA)
        load_data(db, n_users, n_messages)
        for name, query in QUERY_BENCHMARKS:
            best_wall = None
            simulated_us = None
            rows = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = db.execute(query)
                wall = time.perf_counter() - started
                best_wall = wall if best_wall is None else min(best_wall,
                                                               wall)
                simulated_us = result.profile.simulated_us
                rows = len(result.rows)
            results.append({
                "name": name,
                "wall_seconds": round(best_wall, 6),
                "simulated_us": round(simulated_us, 3),
                "rows": rows,
            })
    return results


def run_expression_compile(base_dir: str, quick: bool) -> dict:
    """The join_groupby workload with per-job expression compilation on
    vs off (``ExecutorConfig.compile_expressions``).  Results must be
    identical — only wall-clock may differ (docs/PERFORMANCE.md)."""
    n_users = 200 if quick else 1000
    n_messages = 1000 if quick else 8000
    repeats = 2 if quick else 3
    _, query = QUERY_BENCHMARKS[-1]     # join_groupby
    walls = {}
    rows = {}
    for label, toggle in (("compiled", True), ("interpreted", False)):
        config = ClusterConfig(
            num_nodes=2, partitions_per_node=2,
            node=NodeConfig(buffer_cache_pages=256),
            executor=ExecutorConfig(compile_expressions=toggle),
        )
        path = os.path.join(base_dir, f"exprc_{label}")
        with connect(path, config) as db:
            db.execute(SCHEMA)
            load_data(db, n_users, n_messages)
            best = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = db.execute(query)
                wall = time.perf_counter() - started
                best = wall if best is None else min(best, wall)
            walls[label] = best
            rows[label] = list(result.rows)
    assert rows["compiled"] == rows["interpreted"], \
        "compiled and interpreted runs disagree"
    return {
        "query": "join_groupby",
        "compiled_wall_seconds": round(walls["compiled"], 6),
        "interpreted_wall_seconds": round(walls["interpreted"], 6),
        "speedup": round(walls["interpreted"] / max(walls["compiled"], 1e-9),
                         3),
        "results_identical": True,
    }


def run_batch_execution(base_dir: str, quick: bool) -> dict:
    """The sort_heavy and group_heavy workloads with frame-at-a-time
    batched execution on vs off (``ExecutorConfig.batch_execution``).
    Results and the simulated clock must be identical — only wall-clock
    may differ (docs/PERFORMANCE.md, "Batched execution")."""
    n_users = 200 if quick else 1000
    n_messages = 1000 if quick else 8000
    repeats = 2 if quick else 3
    queries = dict(QUERY_BENCHMARKS)
    out = {}
    observed: dict = {"batched": {}, "per_tuple": {}}
    for label, toggle in (("batched", True), ("per_tuple", False)):
        config = ClusterConfig(
            num_nodes=2, partitions_per_node=2,
            node=NodeConfig(buffer_cache_pages=256),
            executor=ExecutorConfig(batch_execution=toggle),
        )
        path = os.path.join(base_dir, f"batch_{label}")
        with connect(path, config) as db:
            db.execute(SCHEMA)
            load_data(db, n_users, n_messages)
            for name in ("sort_heavy", "group_heavy"):
                best = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = db.execute(queries[name])
                    wall = time.perf_counter() - started
                    best = wall if best is None else min(best, wall)
                observed[label][name] = {
                    "wall": best,
                    "rows": list(result.rows),
                    "simulated_us": result.profile.simulated_us,
                }
    for name in ("sort_heavy", "group_heavy"):
        batched = observed["batched"][name]
        per_tuple = observed["per_tuple"][name]
        assert batched["rows"] == per_tuple["rows"], \
            f"{name}: batched and per-tuple runs disagree"
        assert batched["simulated_us"] == per_tuple["simulated_us"], \
            f"{name}: batched run changed the simulated clock"
        out[name] = {
            "batched_wall_seconds": round(batched["wall"], 6),
            "per_tuple_wall_seconds": round(per_tuple["wall"], 6),
            "speedup": round(
                per_tuple["wall"] / max(batched["wall"], 1e-9), 3),
            "identical_results": True,
            "identical_simulated_us": True,
        }
    return out


def run_serial_vs_parallel(base_dir: str, quick: bool) -> dict:
    """Scan/sort-heavy job on a multi-partition cluster with emulated
    device latency: the parallel executor overlaps the (GIL-releasing)
    page-latency sleeps across nodes; the serial one pays them in line.
    """
    n_messages = 2000 if quick else 8000
    io_latency_us = 400.0
    repeats = 2 if quick else 4
    query = ("SELECT VALUE m.messageId FROM Messages m "
             "ORDER BY m.message LIMIT 50;")

    def build(mode: str):
        # the cache is deliberately tiny relative to the dataset so every
        # scan pays device latency — the thing the parallel executor
        # overlaps across nodes
        config = ClusterConfig(
            num_nodes=4, partitions_per_node=1,
            node=NodeConfig(buffer_cache_pages=16,
                            memory_component_pages=32,
                            sort_memory_frames=4,
                            io_latency_us=io_latency_us),
            executor=ExecutorConfig(mode=mode),
        )
        db = connect(os.path.join(base_dir, f"cmp_{mode}"), config)
        db.execute("""
            CREATE TYPE MessageType AS { messageId: int, authorId: int,
                                         message: string };
            CREATE DATASET Messages(MessageType) PRIMARY KEY messageId;
        """)
        for i in range(n_messages):
            db.cluster.insert_record("Default.Messages", {
                "messageId": i, "authorId": i % 97,
                "message": f"m{i * 7919 % n_messages:06d}" + "y" * 600,
            })
        db.flush_dataset("Messages")
        return db

    observed = {}
    for mode in ("serial", "parallel"):
        with build(mode) as db:
            best_wall = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = db.execute(query)
                wall = time.perf_counter() - started
                best_wall = wall if best_wall is None else min(best_wall,
                                                               wall)
            observed[mode] = {
                "wall_seconds": best_wall,
                "simulated_us": result.profile.simulated_us,
                "rows": result.rows,
            }
    serial, parallel = observed["serial"], observed["parallel"]
    speedup = serial["wall_seconds"] / parallel["wall_seconds"]
    return {
        "workload": "scan+sort over 4 nodes, "
                    f"{n_messages} records, io_latency_us={io_latency_us}",
        "serial_wall_seconds": round(serial["wall_seconds"], 6),
        "parallel_wall_seconds": round(parallel["wall_seconds"], 6),
        "speedup": round(speedup, 3),
        "identical_results": serial["rows"] == parallel["rows"],
        "identical_simulated_us":
            serial["simulated_us"] == parallel["simulated_us"],
        "simulated_us": round(serial["simulated_us"], 3),
    }


def run_fault_overhead(base_dir: str, quick: bool) -> dict:
    """The same query+ingest workload, fault-free vs fault-injected.

    Reuses the chaos harness workload so the injected faults exercise a
    job retry, a node crash with WAL replay, and a feed source re-pull;
    reports the wall-clock overhead and the simulated backoff/detection
    time the faults cost, with results verified identical."""
    import chaos_runner

    observed = {}
    schedule = chaos_runner.make_schedule(seed=1337)
    for label, sched in (("fault_free", None), ("fault_injected", schedule)):
        started = time.perf_counter()
        run = chaos_runner.run_workload(
            os.path.join(base_dir, f"chaos_{label}"), sched)
        observed[label] = {
            "wall_seconds": time.perf_counter() - started,
            "state_sha256": run["state_sha256"],
            "simulated_clock_us": run["simulated_clock_us"],
            "metrics": run["metrics"],
        }
    clean, faulted = observed["fault_free"], observed["fault_injected"]
    return {
        "workload": "chaos_runner query+ingest workload (seed 1337)",
        "fault_free_wall_seconds": round(clean["wall_seconds"], 6),
        "fault_injected_wall_seconds": round(faulted["wall_seconds"], 6),
        "overhead_ratio": round(
            faulted["wall_seconds"] / clean["wall_seconds"], 3),
        "simulated_recovery_us": round(
            faulted["simulated_clock_us"] - clean["simulated_clock_us"], 3),
        "identical_state": (clean["state_sha256"]
                            == faulted["state_sha256"]),
        "faults_injected": faulted["metrics"].get(
            "resilience.faults_injected", 0),
        "resilience_metrics": faulted["metrics"],
    }


def run_memory_pressure(base_dir: str, quick: bool) -> dict:
    """E4-style budget sweep under concurrency (ISSUE-5): the same
    spilled-sort workload at a shrinking node budget, with several
    concurrent queries arbitrated by the per-node memory governor.
    Records reduced grants, merge passes, spill runs, and wall time per
    budget; every query must complete with correct results and the
    governor's peak must never exceed the budget."""
    import threading

    from repro.hyracks import ClusterController, JobSpecification
    from repro.hyracks.connectors import (
        HashPartitionConnector,
        MergeConnector,
    )
    from repro.hyracks.operators import (
        ExternalSortOp,
        InMemorySourceOp,
        ResultWriterOp,
    )
    from repro.observability.metrics import get_registry

    n_tuples = 600 if quick else 3000
    concurrency = 3
    budgets = [4096, 64, 24, 12]
    data = [(i * 7919 % n_tuples, i) for i in range(n_tuples)]
    registry = get_registry()
    rows = []
    for budget in budgets:
        config = ClusterConfig(
            num_nodes=2, partitions_per_node=2, frame_size=16,
            node=NodeConfig(buffer_cache_pages=128,
                            memory_component_pages=64,
                            sort_memory_frames=32,
                            query_memory_frames=budget,
                            query_admission_frames=2),
        )
        cluster = ClusterController(
            os.path.join(base_dir, f"mem_{budget}"), config)
        try:
            sorts = [ExternalSortOp([0]) for _ in range(concurrency)]
            jobs = []
            for op in sorts:
                job = JobSpecification()
                src = job.add_operator(InMemorySourceOp(data))
                sort = job.add_operator(op)
                sink = job.add_operator(ResultWriterOp())
                job.connect(HashPartitionConnector([0]), src, sort)
                job.connect(MergeConnector([0]), sort, sink)
                jobs.append(job)
            results: dict = {}
            errors: list = []

            def run(q, job):
                try:
                    results[q] = cluster.run_job(job)
                except Exception as exc:  # lint: allow-swallow
                    errors.append(repr(exc))   # thread boundary: surfaced below

            before = registry.snapshot()
            started = time.perf_counter()
            threads = [threading.Thread(target=run, args=(q, job))
                       for q, job in enumerate(jobs)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - started
            delta = registry.delta(before)
            correct = not errors and all(
                [t[0] for t in results[q].tuples]
                == sorted(t[0] for t in results[q].tuples)
                and len(results[q].tuples) == n_tuples
                for q in range(concurrency)
            )
            peak = max(node.memory.peak for node in cluster.nodes)
            rows.append({
                "budget_frames": budget,
                "concurrent_queries": concurrency,
                "wall_seconds": round(wall, 6),
                "completed": correct,
                "peak_frames": peak,
                "within_budget": peak <= budget,
                "reduced_grants": delta.get("memory.reduced_grants", 0),
                "merge_passes": delta.get("sort.merge_passes", 0),
                "spill_runs": sum(sum(op.last_run_counts)
                                  for op in sorts),
                "admission_waits": delta.get(
                    "memory.admission_waits", 0),
                "leaked_temp_files": sum(
                    len(node.live_temp_files())
                    for node in cluster.nodes),
            })
        finally:
            cluster.close()
    return {
        "workload": f"{concurrency} concurrent spilled sorts of "
                    f"{n_tuples} tuples, budget sweep",
        "sweep": rows,
    }


TPCCH_SCHEMA = """
CREATE TYPE TpcchOrderType AS { o_id: int };
CREATE DATASET Orders(TpcchOrderType) PRIMARY KEY o_id;
CREATE INDEX oDelivery ON Orders (UNNEST o_orderline SELECT ol_delivery_d);
"""

TPCCH_QUERY = ("SELECT VALUE [o.o_id, ol.ol_number] "
               "FROM Orders o UNNEST o.o_orderline ol "
               "WHERE ol.ol_delivery_d < {cutoff} "
               "ORDER BY o.o_id, ol.ol_number;")


def run_tpcch_sweep(base_dir: str, quick: bool) -> dict:
    """aconitum-style selectivity sweep: the same nested-orderline range
    query through the multi-valued (UNNEST) array index vs a forced full
    scan, at rising selectivity.  Results must be byte-identical at every
    point; the report captures the crossover shape (the index wins when
    the predicate is selective and loses its lead as selectivity rises
    and the random primary lookups approach scanning everything)."""
    from repro.datagen.tpcch import TPCCHGenerator

    scale = 2 if quick else 10
    repeats = 2 if quick else 3
    selectivities = ([0.01, 0.1, 0.5, 1.0] if quick
                     else [0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0])
    gen = TPCCHGenerator(seed=42, scale=scale)
    config = ClusterConfig(num_nodes=2, partitions_per_node=2,
                           node=NodeConfig(buffer_cache_pages=256))
    points = []
    with connect(os.path.join(base_dir, "tpcch"), config) as db:
        db.execute(TPCCH_SCHEMA)
        for order in gen.orders():
            db.cluster.insert_record("Default.Orders", order)
        db.flush_dataset("Orders")
        for sel in selectivities:
            cutoff = gen.delivery_day_cutoff(sel)
            query = TPCCH_QUERY.format(cutoff=cutoff)
            index_used = any(
                m["method"] == "array-index"
                for m in db.explain(query).access_methods)
            observed = {}
            for label, toggle in (("index", True), ("scan", False)):
                best_wall = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = db.execute(query,
                                        enable_index_access=toggle)
                    wall = time.perf_counter() - started
                    best_wall = (wall if best_wall is None
                                 else min(best_wall, wall))
                observed[label] = {
                    "wall": best_wall,
                    "simulated_us": result.profile.simulated_us,
                    "rows": result.rows,
                }
            index, scan = observed["index"], observed["scan"]
            points.append({
                "selectivity": sel,
                "cutoff": cutoff,
                "rows": len(index["rows"]),
                "index_used": index_used,
                "index_wall_seconds": round(index["wall"], 6),
                "scan_wall_seconds": round(scan["wall"], 6),
                "index_simulated_us": round(index["simulated_us"], 3),
                "scan_simulated_us": round(scan["simulated_us"], 3),
                "index_vs_scan_ratio": round(
                    index["simulated_us"]
                    / max(scan["simulated_us"], 1e-9), 4),
                "identical_results": index["rows"] == scan["rows"],
            })
    return {
        "workload": f"TPC-CH orders scale={scale} "
                    f"({gen.num_orders} orders, nested orderlines), "
                    "range predicate on ol_delivery_d under UNNEST",
        "query": TPCCH_QUERY,
        "sweep": points,
    }



JOINORDER_SCHEMA = """
CREATE TYPE TpcchWType AS { w_id: int };
CREATE TYPE TpcchCType AS { c_id: int };
CREATE TYPE TpcchO2Type AS { o_id: int };
CREATE DATASET Warehouses(TpcchWType) PRIMARY KEY w_id;
CREATE DATASET Customers(TpcchCType) PRIMARY KEY c_id;
CREATE DATASET TOrders(TpcchO2Type) PRIMARY KEY o_id;
"""

#: Adversarial written order: Customers and TOrders share no direct join
#: condition (they connect only through Warehouses), so the syntactic
#: left-deep plan starts with their cross product.  The cost-based
#: reorder joins each through the (filtered) warehouse instead.
JOINORDER_QUERY = (
    "SELECT VALUE [c.c_id, o.o_id, w.w_name] "
    "FROM Customers c, TOrders o, Warehouses w "
    "WHERE c.c_w_id = w.w_id AND o.o_w_id = w.w_id "
    "AND w.w_name = 'W001' "
    "ORDER BY c.c_id, o.o_id;")

#: A moderate case for the same machinery: a pure fk chain written
#: worst-first (fact table first, selective dimension last).
JOINORDER_CHAIN_QUERY = (
    "SELECT VALUE [o.o_id, c.c_last, w.w_name] "
    "FROM TOrders o, Customers c, Warehouses w "
    "WHERE o.o_c_id = c.c_id AND c.c_w_id = w.w_id "
    "AND w.w_state = 'CA' "
    "ORDER BY o.o_id;")


def run_join_order(base_dir: str, quick: bool) -> dict:
    """3-way TPC-CH join in an adversarial written order, stats-driven
    cost-based optimization on vs off.  Results must be byte-identical
    (both queries ORDER BY a unique key); the report carries the
    estimated-vs-actual cardinality per operator from the stats-on run
    and the simulated-clock ratio (the paper's data-partition-aware
    optimizer argument, quantified)."""
    from repro.datagen.tpcch import TPCCHGenerator

    scale = 4 if quick else 10
    repeats = 2 if quick else 3
    gen = TPCCHGenerator(seed=42, scale=scale)
    config = ClusterConfig(num_nodes=2, partitions_per_node=2,
                           node=NodeConfig(buffer_cache_pages=256))
    queries = [("cross_product_trap", JOINORDER_QUERY),
               ("fk_chain_worst_first", JOINORDER_CHAIN_QUERY)]
    points = []
    with connect(os.path.join(base_dir, "joinorder"), config) as db:
        db.execute(JOINORDER_SCHEMA)
        for w in gen.warehouses():
            db.cluster.insert_record("Default.Warehouses", w)
        for c in gen.customers():
            db.cluster.insert_record("Default.Customers", c)
        for o in gen.orders():
            o = dict(o)
            o.pop("o_orderline", None)   # joins only; drop nested lines
            db.cluster.insert_record("Default.TOrders", o)
        for ds in ("Warehouses", "Customers", "TOrders"):
            db.flush_dataset(ds)
        for name, query in queries:
            observed = {}
            for label, toggle in (("stats_on", True), ("stats_off", False)):
                best_wall = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = db.execute(query, enable_cost_based=toggle)
                    wall = time.perf_counter() - started
                    best_wall = (wall if best_wall is None
                                 else min(best_wall, wall))
                observed[label] = {
                    "wall": best_wall,
                    "simulated_us": result.profile.simulated_us,
                    "rows": result.rows,
                }
            traced = db.execute(query, trace=True)
            est_vs_actual = [
                {"operator": op["name"],
                 "estimated": op["estimated_cardinality"],
                 "actual": op["actual_cardinality"]}
                for op in traced.trace.operators
                if "estimated_cardinality" in op
            ]
            on, off = observed["stats_on"], observed["stats_off"]
            points.append({
                "query": name,
                "sql": query,
                "rows": len(on["rows"]),
                "identical_results": on["rows"] == off["rows"],
                "stats_on_wall_seconds": round(on["wall"], 6),
                "stats_off_wall_seconds": round(off["wall"], 6),
                "stats_on_simulated_us": round(on["simulated_us"], 3),
                "stats_off_simulated_us": round(off["simulated_us"], 3),
                "off_vs_on_ratio": round(
                    off["simulated_us"] / max(on["simulated_us"], 1e-9), 4),
                "est_vs_actual": est_vs_actual,
            })
    return {
        "workload": f"TPC-CH warehouses/customers/orders scale={scale}: "
                    "3-way joins in adversarial written order, "
                    "cost-based optimization on vs off",
        "points": points,
    }


def main(argv=None) -> int:
    # verification is on for benchmarks too; its cost is part of the
    # compile phases the reports break out, not of operator runtime
    from repro.analysis import set_plan_verification
    set_plan_verification(True)

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small datasets / few repeats (CI smoke)")
    parser.add_argument("-o", "--output", default="BENCH_PR7.json",
                        help="report path (default: BENCH_PR7.json)")
    parser.add_argument("--tpcch-output", default="BENCH_PR8.json",
                        help="TPC-CH sweep report path "
                             "(default: BENCH_PR8.json)")
    parser.add_argument("--joinorder-output", default="BENCH_PR10.json",
                        help="join-order benchmark report path "
                             "(default: BENCH_PR10.json)")
    args = parser.parse_args(argv)

    base_dir = tempfile.mkdtemp(prefix="bench_runner_")
    try:
        started = time.perf_counter()
        benchmarks = run_query_benchmarks(base_dir, args.quick)
        expression_compile = run_expression_compile(base_dir, args.quick)
        batch_execution = run_batch_execution(base_dir, args.quick)
        comparison = run_serial_vs_parallel(base_dir, args.quick)
        fault_overhead = run_fault_overhead(base_dir, args.quick)
        memory_pressure = run_memory_pressure(base_dir, args.quick)
        tpcch = run_tpcch_sweep(base_dir, args.quick)
        join_order = run_join_order(base_dir, args.quick)
        report = {
            "mode": "quick" if args.quick else "full",
            "benchmarks": benchmarks,
            "expression_compile": expression_compile,
            "batch_execution": batch_execution,
            "serial_vs_parallel": comparison,
            "fault_overhead": fault_overhead,
            "memory_pressure": memory_pressure,
            "tpcch_sweep": tpcch,
            "join_order": join_order,
            "total_seconds": round(time.perf_counter() - started, 3),
        }
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    with open(args.tpcch_output, "w") as f:
        json.dump({"mode": report["mode"], "tpcch_sweep": tpcch}, f,
                  indent=2)
        f.write("\n")
    with open(args.joinorder_output, "w") as f:
        json.dump({"mode": report["mode"], "join_order": join_order}, f,
                  indent=2)
        f.write("\n")

    print(f"wrote {args.output}, {args.tpcch_output}, "
          f"and {args.joinorder_output}")
    for bench in benchmarks:
        print(f"  {bench['name']:<24} wall {bench['wall_seconds']*1e3:8.2f} ms"
              f"   simulated {bench['simulated_us']/1e3:10.2f} ms")
    print(f"  expression compile: "
          f"{expression_compile['compiled_wall_seconds']*1e3:.2f} ms compiled"
          f" vs {expression_compile['interpreted_wall_seconds']*1e3:.2f} ms "
          f"interpreted ({expression_compile['speedup']}x)")
    for name, row in batch_execution.items():
        print(f"  batch execution ({name}): "
              f"{row['batched_wall_seconds']*1e3:.2f} ms batched vs "
              f"{row['per_tuple_wall_seconds']*1e3:.2f} ms per-tuple "
              f"({row['speedup']}x)")
    print(f"  serial vs parallel: {comparison['serial_wall_seconds']*1e3:.2f}"
          f" ms vs {comparison['parallel_wall_seconds']*1e3:.2f} ms"
          f"  (speedup {comparison['speedup']}x)")
    print(f"  fault overhead: "
          f"{fault_overhead['fault_free_wall_seconds']*1e3:.2f} ms clean vs "
          f"{fault_overhead['fault_injected_wall_seconds']*1e3:.2f} ms "
          f"faulted ({fault_overhead['overhead_ratio']}x, "
          f"{fault_overhead['faults_injected']} faults)")
    for row in memory_pressure["sweep"]:
        print(f"  memory budget {row['budget_frames']:>5} frames: "
              f"wall {row['wall_seconds']*1e3:8.2f} ms  "
              f"spill runs {row['spill_runs']:>4}  "
              f"reduced grants {row['reduced_grants']:>3}  "
              f"peak {row['peak_frames']}")

    for row in tpcch["sweep"]:
        print(f"  tpcch sel {row['selectivity']:<6} rows {row['rows']:>6}: "
              f"index {row['index_simulated_us']/1e3:9.2f} ms vs scan "
              f"{row['scan_simulated_us']/1e3:9.2f} ms simulated "
              f"(ratio {row['index_vs_scan_ratio']})")

    for row in join_order["points"]:
        print(f"  join order {row['query']:<22} rows {row['rows']:>6}: "
              f"stats-on {row['stats_on_simulated_us']/1e3:9.2f} ms vs "
              f"stats-off {row['stats_off_simulated_us']/1e3:9.2f} ms "
              f"simulated (off/on {row['off_vs_on_ratio']}x)")

    headline = join_order["points"][0]
    join_order_ok = (
        all(row["identical_results"] for row in join_order["points"])
        # the cost-based order must beat the adversarial written order
        # by >= 2x on the simulated clock (the acceptance bar)
        and headline["off_vs_on_ratio"] >= 2.0
        and all(row["off_vs_on_ratio"] >= 1.0
                for row in join_order["points"])
        and all(row["est_vs_actual"] for row in join_order["points"]))
    if not join_order_ok:
        print("FAIL: join-order benchmark did not meet the bar "
              "(byte-identical results, >= 2x simulated win on the "
              "adversarial order, estimates attached)", file=sys.stderr)
        return 1

    tp = tpcch["sweep"]
    tpcch_ok = (all(row["identical_results"] and row["index_used"]
                    for row in tp)
                # the crossover shape: the index wins at the most
                # selective point and its advantage erodes monotonically
                # in the sweep's ratio ordering as selectivity rises
                and tp[0]["index_vs_scan_ratio"] < 1.0
                and tp[0]["index_vs_scan_ratio"]
                < tp[-1]["index_vs_scan_ratio"])
    if not tpcch_ok:
        print("FAIL: TPC-CH sweep did not meet the bar (byte-identical "
              "index vs scan results, array index chosen, and the "
              "index-vs-scan crossover shape)", file=sys.stderr)
        return 1

    sweep = memory_pressure["sweep"]
    ok = (comparison["identical_results"]
          and comparison["identical_simulated_us"]
          and comparison["speedup"] >= 1.5
          and fault_overhead["identical_state"]
          and fault_overhead["faults_injected"] >= 3
          and all(row["completed"] and row["within_budget"]
                  and row["leaked_temp_files"] == 0 for row in sweep)
          and any(row["reduced_grants"] >= 1 for row in sweep))
    if not ok:
        print("FAIL: parallel executor, resilience layer, or memory "
              "governor did not meet the bar (identical results, >=1.5x "
              "wall-clock, identical faulted state, all budget-sweep "
              "queries completed within budget with zero leaked run "
              "files and at least one reduced grant)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
