#!/usr/bin/env python
"""Docs link checker: fail CI if docs cite paths that no longer exist.

Scans ``docs/*.md`` (plus README.md) for

* repo paths — any backtick-quoted or markdown-linked reference that
  looks like ``src/repro/...``, ``repro/...``, ``tests/...``,
  ``docs/...``, ``examples/...``, ``benchmarks/...`` or ``tools/...`` —
  and verifies the file or directory exists (``repro/...`` resolves
  under ``src/``);
* relative markdown links (``[text](OBSERVABILITY.md)``) and verifies
  the target exists relative to the citing document;
* inline (non-backticked) ``src/repro/...`` path references in prose —
  the kind stale docs accumulate when a module moves — and verifies
  each exists on disk.

Exit status 0 when everything resolves, 1 otherwise (one line per
broken reference).  Run from anywhere: paths resolve against the repo
root (this script's parent's parent).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: directories a cited repo path may start with
ROOTS = ("src", "repro", "tests", "docs", "examples", "benchmarks",
         "tools")

BACKTICK = re.compile(r"`([^`\n]+)`")
MDLINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
#: bare src/repro/... references in prose (outside backticks/links)
INLINE_SRC = re.compile(r"\bsrc/repro/[\w./-]*\w")


def candidate_paths(text: str):
    """Backtick-quoted strings that look like repo file paths."""
    for match in BACKTICK.finditer(text):
        token = match.group(1).strip()
        # strip trailing prose punctuation some citations carry
        token = token.rstrip(".,;:")
        if "/" not in token:
            continue
        if any(ch in token for ch in " ()*{}<>$\"'=,"):
            continue                      # code snippets, not paths
        first = token.split("/", 1)[0]
        if first in ROOTS:
            yield token


def resolve_repo_path(token: str) -> bool:
    path = REPO / token
    if path.exists():
        return True
    if token.startswith("repro/"):        # module path; lives under src/
        return (REPO / "src" / token).exists()
    return False


def inline_src_paths(text: str):
    """Bare ``src/repro/...`` references outside backticks — scan with
    the backticked spans blanked so each reference is reported once."""
    blanked = BACKTICK.sub(lambda m: " " * len(m.group(0)), text)
    for match in INLINE_SRC.finditer(blanked):
        yield match.group(0).rstrip(".,;:")


def check_file(doc: Path) -> list[str]:
    text = doc.read_text()
    errors = []
    for token in candidate_paths(text):
        if not resolve_repo_path(token):
            errors.append(f"{doc.relative_to(REPO)}: broken path `{token}`")
    for token in inline_src_paths(text):
        if not resolve_repo_path(token):
            errors.append(
                f"{doc.relative_to(REPO)}: broken inline path {token}")
    for match in MDLINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        if not ((doc.parent / target).exists() or (REPO / target).exists()):
            errors.append(
                f"{doc.relative_to(REPO)}: broken link ({target})")
    return errors


def main() -> int:
    docs = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]
    errors = []
    for doc in docs:
        if doc.exists():
            errors.extend(check_file(doc))
    for error in errors:
        print(error)
    if not errors:
        print(f"ok: {len(docs)} docs, all cited paths resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
