#!/usr/bin/env python
"""Chaos harness: a faulted run must equal a fault-free run, byte for byte.

Runs the same deterministic query + feed-ingest workload twice — once
clean, once under a seeded :class:`~repro.resilience.FaultSchedule` that
injects four fault types (feed-source drop, node crash at a WAL flush
boundary, operator failure, disk I/O error) — and asserts that:

* every query result collected along the way is identical,
* the final dataset state (canonical serialization of full scans) is
  identical, digest included,
* at least three distinct fault kinds actually fired,
* the ``resilience.*`` metrics show at least one WAL replay and at least
  one job retry, so the equivalence was earned, not vacuous,
* zero run files remain on any node after either run — the workload's
  sort budget is deliberately tiny so queries spill, and faults striking
  mid-spill must not leak the abandoned runs (the retry loop purges
  them between attempts).

Writes a JSON report (default ``chaos_report.json``) and exits non-zero
on any divergence or unexercised recovery path.

Usage::

    PYTHONPATH=src python tools/chaos_runner.py
    PYTHONPATH=src python tools/chaos_runner.py --seed 7 -o report.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import connect                                    # noqa: E402
from repro.common.config import ClusterConfig, NodeConfig    # noqa: E402
from repro.feeds import FeedManager, GeneratorSource         # noqa: E402
from repro.observability.metrics import get_registry         # noqa: E402
from repro.resilience import (                               # noqa: E402
    DiskIOFault,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    FeedSourceFault,
    NodeCrashFault,
    OperatorFault,
    ResilienceFault,
)

N_USERS = 40
N_MESSAGES = 200
BATCH_SIZE = 16
ROUNDS = 5

SCHEMA = """
CREATE TYPE UserType AS { id: int, alias: string, age: int };
CREATE TYPE MsgType AS { messageId: int, authorId: int, text: string };
CREATE DATASET Users(UserType) PRIMARY KEY id;
CREATE DATASET Msgs(MsgType) PRIMARY KEY messageId;
"""

QUERIES = [
    "SELECT VALUE COUNT(*) FROM Msgs m;",
    "SELECT VALUE m.text FROM Msgs m WHERE m.messageId < 10 "
    "ORDER BY m.messageId;",
    "SELECT age, COUNT(*) AS n FROM Users u GROUP BY u.age AS age "
    "ORDER BY age;",
    # a full sort of the fed messages: under the tiny sort budget this
    # spills run files, so faults can strike mid-spill
    "SELECT VALUE m.text FROM Msgs m ORDER BY m.text;",
]


def message_stream():
    for i in range(N_MESSAGES):
        yield {"messageId": i, "authorId": i % N_USERS,
               "text": f"t{i * 37 % N_MESSAGES:04d}-" + "z" * (i % 23)}


def make_schedule(seed: int) -> FaultSchedule:
    """Four fault types against four different sites.  Node-scoped rules
    are pinned (per-node hit streams are serialized, hence exactly
    reproducible); the crash lands mid-ingest at a WAL flush boundary so
    recovery must replay the log."""
    return FaultSchedule(seed=seed, rules=[
        FaultRule(site="feed.next_batch", fault=FeedSourceFault, at_hit=2),
        FaultRule(site="wal.flush", fault=NodeCrashFault, at_hit=10,
                  node=0),
        FaultRule(site="executor.operator", fault=OperatorFault, at_hit=3,
                  node=1),
        FaultRule(site="disk.read_page", fault=DiskIOFault, at_hit=2,
                  node=1),
    ])


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def run_workload(base_dir: str, schedule: FaultSchedule | None) -> dict:
    injector = FaultInjector()
    config = ClusterConfig(
        num_nodes=2, partitions_per_node=2,
        # small frames + tiny sort budget: the ORDER BY over the fed
        # messages spills run files, exercising the leak-free lifecycle
        frame_size=8,
        # tiny cache: query scans after the flush go to real pages, so
        # the disk.read_page site sees traffic
        node=NodeConfig(buffer_cache_pages=8, sort_memory_frames=2,
                        group_memory_frames=2),
    )
    db = connect(base_dir, config, injector=injector)
    try:
        db.execute(SCHEMA)
        for i in range(N_USERS):
            db.cluster.insert_record("Default.Users", {
                "id": i, "alias": f"u{i}", "age": 18 + i % 7,
            })
        db.flush_dataset("Users")
        feeds = FeedManager(db)
        feeds.create_feed("msgs", GeneratorSource(message_stream()),
                          batch_size=BATCH_SIZE)
        feeds.connect_feed("msgs", "Msgs")
        feeds.start_feed("msgs")

        if schedule is not None:
            injector.arm(schedule)
        before = get_registry().snapshot()

        query_results = []
        for rnd in range(ROUNDS):
            feeds.pump("msgs", max_batches=2)
            if rnd == 2:
                # seal the fed records mid-workload: later scans must
                # read real pages, giving disk.read_page its traffic.
                # Maintenance is fallible too — recover and re-flush.
                try:
                    db.flush_dataset("Msgs")
                except ResilienceFault as fault:
                    db.cluster.handle_fault(fault)
                    db.cluster.retry_policy.backoff(1, db.cluster.clock)
                    db.flush_dataset("Msgs")
            for q in QUERIES:
                query_results.append(db.query(q))
        feeds.pump("msgs")               # drain the source
        for q in QUERIES:
            query_results.append(db.query(q))

        state = {
            name: [[list(pk), rec] for pk, rec in sorted(
                db.cluster.scan_dataset(f"Default.{name}"))]
            for name in ("Users", "Msgs")
        }
        state_canonical = canonical(state)
        delta = get_registry().delta(before)
        return {
            "query_results": query_results,
            "state_records": {k: len(v) for k, v in state.items()},
            "state_sha256": hashlib.sha256(
                state_canonical.encode()).hexdigest(),
            "_state_canonical": state_canonical,
            "metrics": {k: v for k, v in sorted(delta.items())
                        if k.startswith("resilience.")},
            "fault_firings": list(injector.history),
            "simulated_clock_us": db.cluster.clock.now_us,
            "leaked_temp_files": sum(
                len(node.live_temp_files()) for node in db.cluster.nodes),
        }
    finally:
        injector.disarm()
        db.close()


def main(argv=None) -> int:
    # every plan compiled under chaos runs with the verifier on: a rule
    # corrupting a plan should fail loudly here, not mask a fault bug
    from repro.analysis import set_plan_verification
    set_plan_verification(True)

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1337,
                        help="fault-schedule seed (default: 1337)")
    parser.add_argument("-o", "--output", default="chaos_report.json",
                        help="report path (default: chaos_report.json)")
    args = parser.parse_args(argv)

    schedule = make_schedule(args.seed)
    base_dir = tempfile.mkdtemp(prefix="chaos_runner_")
    started = time.perf_counter()
    try:
        baseline = run_workload(os.path.join(base_dir, "baseline"), None)
        chaos = run_workload(os.path.join(base_dir, "chaos"), schedule)
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)

    queries_identical = (canonical(baseline["query_results"])
                         == canonical(chaos["query_results"]))
    state_identical = (baseline.pop("_state_canonical")
                       == chaos.pop("_state_canonical"))
    metrics = chaos["metrics"]
    kinds_fired = sorted({f["fault"] for f in chaos["fault_firings"]})
    checks = {
        "queries_identical": queries_identical,
        "state_identical": state_identical,
        "fault_kinds_fired_>=3": len(kinds_fired) >= 3,
        "wal_replays_>=1": metrics.get("resilience.wal_replays", 0) >= 1,
        "job_retries_>=1": metrics.get("resilience.job_retries", 0) >= 1,
        "baseline_saw_no_faults": not baseline["fault_firings"],
        "no_leaked_runfiles": (baseline["leaked_temp_files"] == 0
                               and chaos["leaked_temp_files"] == 0),
    }
    report = {
        "seed": args.seed,
        "schedule": schedule.to_dict(),
        "workload": f"{N_USERS} users + {N_MESSAGES} fed messages, "
                    f"{ROUNDS} pump/query rounds on 2 nodes x 2 partitions",
        "baseline": baseline,
        "chaos": chaos,
        "fault_kinds_fired": kinds_fired,
        "checks": checks,
        "ok": all(checks.values()),
        "total_seconds": round(time.perf_counter() - started, 3),
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(f"wrote {args.output}")
    print(f"  faults fired: {', '.join(kinds_fired) or 'none'} "
          f"({len(chaos['fault_firings'])} firings)")
    for name, value in metrics.items():
        print(f"  {name:<40} {value}")
    for name, passed in checks.items():
        print(f"  [{'ok' if passed else 'FAIL'}] {name}")
    if not report["ok"]:
        print("FAIL: chaos run diverged from the fault-free run or "
              "required recovery paths went unexercised", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
