#!/usr/bin/env python
"""Benchmark regression gate for CI's bench-smoke job.

Compares a quick-mode ``bench_runner`` report against the committed
baseline (``benchmarks/baseline_quick.json``) on the deterministic
simulated clock — ``simulated_us`` is identical run to run on any
machine, unlike wall-clock, so the gate never flakes on CI hardware.
A benchmark fails the gate when its simulated time regresses more than
``--tolerance`` (default 20%) over baseline; improvements always pass
(refresh the baseline deliberately when a PR makes one permanent — the
speedup trajectory lives in docs/PERFORMANCE.md).

Usage::

    PYTHONPATH=src python tools/bench_runner.py --quick -o report.json
    python tools/bench_gate.py report.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "baseline_quick.json")


def load_benchmarks(path: str) -> dict:
    with open(path) as f:
        report = json.load(f)
    return {b["name"]: b for b in report.get("benchmarks", [])}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="quick-mode bench_runner report")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline report")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.report)
    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from {args.report}")
            continue
        if cur.get("rows") != base.get("rows"):
            failures.append(
                f"{name}: row count changed "
                f"({base.get('rows')} -> {cur.get('rows')})")
            continue
        base_us, cur_us = base["simulated_us"], cur["simulated_us"]
        limit = base_us * (1.0 + args.tolerance)
        status = "FAIL" if cur_us > limit else "ok"
        print(f"  {status:<4} {name:<24} baseline {base_us:>10.0f} us"
              f"   now {cur_us:>10.0f} us   limit {limit:>10.0f} us")
        if cur_us > limit:
            failures.append(
                f"{name}: simulated_us {cur_us:.0f} exceeds "
                f"{limit:.0f} (baseline {base_us:.0f} "
                f"+{args.tolerance:.0%})")
    if failures:
        print("bench gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"bench gate passed ({len(baseline)} benchmarks within "
          f"{args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
