"""E5 — SQL++ as a peer of AQL (paper §IV-A).

"Thanks to AsterixDB's Algebricks and Hyracks layers, we were able [to]
implement SQL++ fairly quickly as a peer of AQL, sharing the Algebricks
query algebra and many optimizer rules as well as the associated Hyracks
runtime operators and connectors."

The falsifiable version: equivalent queries in the two languages must
produce (a) the same answers, (b) the same optimized plan shapes, and
(c) near-identical simulated runtimes — because after the (tiny) parser
layer they *are* the same pipeline.
"""

import re

import pytest

from repro import connect
from repro.datagen import GleambookGenerator

from conftest import print_table

PAIRS = [
    ("filter scan",
     "SELECT VALUE u.alias FROM Users u WHERE u.age > 30;",
     "for $u in dataset Users where $u.age > 30 return $u.alias;"),
    ("pk lookup",
     "SELECT VALUE u.name FROM Users u WHERE u.id = 77;",
     "for $u in dataset Users where $u.id = 77 return $u.name;"),
    ("join",
     "SELECT VALUE m.messageId FROM Users u, Messages m "
     "WHERE m.authorId = u.id AND u.age = 25;",
     "for $u in dataset Users for $m in dataset Messages "
     "where $m.authorId = $u.id and $u.age = 25 return $m.messageId;"),
    ("sort+limit",
     "SELECT VALUE u.alias FROM Users u ORDER BY u.alias LIMIT 10;",
     "for $u in dataset Users order by $u.alias limit 10 "
     "return $u.alias;"),
    ("grouping",
     "SELECT age, COUNT(*) AS n FROM Users u GROUP BY u.age AS age;",
     "for $u in dataset Users group by $age := $u.age with $u "
     "return {\"age\": $age, \"n\": count($u)};"),
]


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    instance = connect(str(tmp_path_factory.mktemp("e5")))
    instance.execute("""
        CREATE TYPE UserType AS { id: int, alias: string, name: string,
                                  age: int };
        CREATE TYPE MessageType AS { messageId: int, authorId: int,
                                     message: string };
        CREATE DATASET Users(UserType) PRIMARY KEY id;
        CREATE DATASET Messages(MessageType) PRIMARY KEY messageId;
    """)
    gen = GleambookGenerator(seed=29)
    for i, user in enumerate(gen.users(300)):
        instance.cluster.insert_record("Default.Users", {
            "id": user["id"], "alias": user["alias"],
            "name": user["name"], "age": 18 + i % 30,
        })
    for m in gen.messages(1200, num_users=300):
        instance.cluster.insert_record("Default.Messages", {
            "messageId": m["messageId"], "authorId": m["authorId"],
            "message": m["message"],
        })
    yield instance
    instance.close()


def plan_shape(db, text, language):
    """Operator sequence with variables erased and assign *chains*
    collapsed (SQL++ projections assign field-by-field where AQL's RETURN
    assigns one object — the same pipelined work, differently chunked)."""
    plan = db.execute(text, language=language, explain=True).plan
    ops = [re.sub(r"\$\$\d+", "$", line).strip().split()[0]
           for line in plan.splitlines()]
    collapsed = []
    for op in ops:
        if op == "assign" and collapsed and collapsed[-1] == "assign":
            continue
        collapsed.append(op)
    return collapsed


def canonical(rows):
    return sorted(rows, key=repr)


def test_aql_sqlpp_parity(benchmark, db):
    rows = []
    ratios = []
    for name, sqlpp, aql in PAIRS:
        r1 = db.execute(sqlpp)
        r2 = db.execute(aql, language="aql")
        assert canonical(r1.rows) == canonical(r2.rows), name
        s1 = plan_shape(db, sqlpp, "sqlpp")
        s2 = plan_shape(db, aql, "aql")
        same_plan = s1 == s2
        t1, t2 = r1.profile.simulated_ms, r2.profile.simulated_ms
        ratio = t2 / t1 if t1 else 1.0
        ratios.append(ratio)
        rows.append([name, "yes" if same_plan else "NO",
                     f"{t1:.2f}", f"{t2:.2f}", f"{ratio:.2f}"])
        assert same_plan, f"plan shapes diverge for {name}:\n{s1}\n{s2}"
    print_table(
        "E5: the same query in SQL++ and AQL (shared algebra)",
        ["query", "same plan", "SQL++ ms", "AQL ms", "AQL/SQL++"],
        rows,
    )
    assert all(0.9 <= r <= 1.1 for r in ratios), ratios
    benchmark.extra_info["runtime_ratios"] = [round(r, 3) for r in ratios]
    benchmark(db.execute, PAIRS[2][1])


def test_parser_is_the_only_difference(benchmark, db):
    """Compile the same statement repeatedly in both languages: the only
    cost difference is the (cheap) parse+translate step."""
    import time

    def compile_only(text, language):
        return db.execute(text, language=language, explain=True)

    t0 = time.perf_counter()
    for _ in range(30):
        compile_only(PAIRS[2][1], "sqlpp")
    sqlpp_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(30):
        compile_only(PAIRS[2][2], "aql")
    aql_s = time.perf_counter() - t0
    print(f"\nE5b: 30 compilations — SQL++ {sqlpp_s * 1000:.1f} ms, "
          f"AQL {aql_s * 1000:.1f} ms")
    assert 0.3 < aql_s / sqlpp_s < 3.0
    benchmark(compile_only, PAIRS[2][1], "sqlpp")
