"""Shared benchmark infrastructure.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1-E11).  Absolute numbers are not the point (repro band 2/5; the
substrate is a simulator) — the *shape* is: who wins, by what factor,
where behaviour changes.  Each bench asserts its shape claim and records
the measured figures in ``benchmark.extra_info`` (visible with
``pytest benchmarks/ --benchmark-only``); EXPERIMENTS.md collects them.
"""

import shutil

import pytest

from repro.common.config import CostModel
from repro.storage import BufferCache, FileManager, IODevice

COST = CostModel()


class StorageStack:
    """One-node storage stack used by the storage-level experiments."""

    def __init__(self, root: str, *, page_size: int = 4096,
                 cache_pages: int = 128):
        self.device = IODevice(0, root)
        self.fm = FileManager([self.device], page_size)
        self.cache = BufferCache(self.fm, cache_pages)

    def reset_io(self):
        self.device.reset_stats()

    def drop_caches(self):
        """Flush dirty pages and empty the buffer pool (cold-cache runs)."""
        self.cache.flush_all()
        self.cache._pages.clear()
        self.cache._clock.clear()
        self.cache._hand = 0

    def io_cost_us(self, stats=None) -> float:
        s = stats if stats is not None else self.device.stats
        return (s.reads * COST.page_read_us
                + s.writes * COST.page_write_us
                + s.seq_reads * COST.seq_page_read_us
                + s.seq_writes * COST.seq_page_write_us)

    def close(self):
        self.fm.close()


@pytest.fixture
def stack(tmp_path_factory):
    stacks = []

    def make(name: str, **kwargs) -> StorageStack:
        root = tmp_path_factory.mktemp(name)
        s = StorageStack(str(root), **kwargs)
        stacks.append(s)
        return s

    yield make
    for s in stacks:
        s.close()


def print_table(title: str, headers: list, rows: list) -> None:
    """Render one experiment's table the way the paper would print it."""
    print(f"\n### {title}")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
