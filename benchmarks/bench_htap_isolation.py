"""E8 — Couchbase Analytics HTAP isolation (paper §VI, Fig. 7).

"The addition of Couchbase Analytics now allows users to conduct near
real-time data analyses on an up-to-date copy of the data; this provides
performance isolation, so heavy data analysis queries won't interfere
with front-end operations and vice versa."

Workload: an order stream hitting the KV front end while analytical
queries run (a) on the shadow dataset (the Analytics architecture) and
(b) inline against the data service (the pre-Analytics baseline).

Shape assertions: front-end op latency is unchanged by shadow-side
analytics but degrades badly under inline scans; the shadow stays fresh
(bounded lag) while ingesting continuously.
"""

import pytest

from repro import connect
from repro.analytics import AnalyticsService, KVStore

from conftest import print_table

N_DOCS = 1500
ANALYTICS_QUERY = """
SELECT status, COUNT(*) AS n, SUM(o.total) AS revenue
FROM orders o GROUP BY o.status AS status ORDER BY status;
"""


@pytest.fixture(scope="module")
def htap(tmp_path_factory):
    db = connect(str(tmp_path_factory.mktemp("e8")))
    kv = KVStore()
    kv.create_bucket("orders", op_service_time_us=10.0)
    analytics = AnalyticsService(db, kv)
    analytics.connect_bucket("orders")
    yield db, kv, analytics
    db.close()


def write_phase(bucket, start, count, now_us):
    latencies = []
    for i in range(start, start + count):
        latency = bucket.upsert(
            f"order::{i}",
            {"customer": f"c{i % 50}", "total": 5 + i % 200,
             "status": "paid" if i % 6 else "refunded"},
            now_us=now_us,
        )
        latencies.append(latency)
        now_us += 25.0
    return latencies, now_us


def p99(values):
    return sorted(values)[int(len(values) * 0.99)]


def test_performance_isolation(benchmark, htap):
    db, kv, analytics = htap
    bucket = kv.bucket("orders")

    # phase 1: writes alone (baseline latency)
    base_lat, now = write_phase(bucket, 0, N_DOCS, 0.0)
    analytics.sync()

    # phase 2: writes while shadow-side analytics runs
    shadow_answer = analytics.query(ANALYTICS_QUERY)
    iso_lat, now = write_phase(bucket, N_DOCS, N_DOCS, now)

    # phase 3: writes right after an inline data-service scan
    bucket.scan_inline(now_us=now, per_doc_us=2.0)
    inline_lat, now = write_phase(bucket, 2 * N_DOCS, N_DOCS, now)

    rows = [
        ["writes only", f"{p99(base_lat):.0f}",
         f"{max(base_lat):.0f}"],
        ["writes + shadow analytics", f"{p99(iso_lat):.0f}",
         f"{max(iso_lat):.0f}"],
        ["writes + inline scan", f"{p99(inline_lat):.0f}",
         f"{max(inline_lat):.0f}"],
    ]
    print_table(
        "E8a: front-end op latency under analytics (simulated us)",
        ["phase", "p99 latency", "max latency"],
        rows,
    )
    assert p99(iso_lat) <= p99(base_lat) * 1.05, \
        "shadow analytics must not perturb the front end"
    assert p99(inline_lat) > p99(base_lat) * 10, \
        "the inline baseline should visibly stall the front end"
    assert shadow_answer  # and the analytics answer is real

    benchmark.extra_info.update({
        "p99_writes_only_us": round(p99(base_lat)),
        "p99_with_shadow_analytics_us": round(p99(iso_lat)),
        "p99_with_inline_scan_us": round(p99(inline_lat)),
    })
    benchmark(analytics.query, ANALYTICS_QUERY)


def test_shadow_freshness(benchmark, htap):
    db, kv, analytics = htap
    bucket = kv.bucket("orders")
    rows = []
    max_lag_after_sync = 0
    now = bucket.busy_until_us
    for wave in range(4):
        _, now = write_phase(bucket, 10_000 + wave * 300, 300, now)
        lag_before = analytics.lag("orders")
        applied = analytics.sync()
        lag_after = analytics.lag("orders")
        max_lag_after_sync = max(max_lag_after_sync, lag_after)
        rows.append([wave + 1, lag_before, applied, lag_after])
    print_table(
        "E8b: shadow-dataset freshness across ingest waves",
        ["wave", "lag before sync", "mutations applied", "lag after"],
        rows,
    )
    assert max_lag_after_sync == 0
    total = analytics.query("SELECT VALUE COUNT(*) FROM orders o;")[0]
    assert total == len(kv.bucket("orders").documents)
    benchmark(analytics.sync)
