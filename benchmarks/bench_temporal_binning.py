"""E11 — temporal binning for the multitasking study (paper §V-D, [27]).

"They needed to time-bin their data into various sized bins and to deal
with the possibility that a given user activity might span bins (so they
needed to allocate portions of such an activity to the relevant bins).
We enhanced our temporal function support to deal with their
requirements."

Workload: the synthetic activity log binned at three granularities.

Shape assertions: allocated time is conserved exactly (the sum over bins
equals the sum of activity durations, at every bin width); the number of
bin-spanning activities grows as bins shrink; the CSV round-trip
preserves every interval.
"""

import pytest

from repro.adm import ADateTime, ADuration
from repro.datagen import activity_log
from repro.external import export_csv, import_csv
from repro.functions import call

from conftest import print_table

N_ACTIVITIES = 1200
ANCHOR = ADateTime.parse("2014-02-03T00:00:00")
BIN_WIDTHS = {"15 min": "PT15M", "1 hour": "PT1H", "4 hours": "PT4H"}


@pytest.fixture(scope="module")
def activities():
    return activity_log(N_ACTIVITIES, num_students=15)


def allocate(records, bin_duration: ADuration):
    """Split every activity across the bins it overlaps; returns
    (total ms allocated, spanning count, bins used)."""
    allocated = 0
    spanning = 0
    bins_used = set()
    for record in records:
        interval = record["activity"]
        bins = call("overlap_bins", interval, ANCHOR, bin_duration)
        if len(bins) > 1:
            spanning += 1
        for b in bins:
            piece = call("get_overlapping_interval", interval, b)
            allocated += call("duration_from_interval", piece).millis
            bins_used.add(b.start)
    return allocated, spanning, bins_used


def test_binning_conserves_time(benchmark, activities):
    total_activity_ms = sum(
        r["activity"].end - r["activity"].start for r in activities
    )
    rows = []
    spans = {}
    for label, iso in BIN_WIDTHS.items():
        duration = ADuration.parse(iso)
        allocated, spanning, bins_used = allocate(activities, duration)
        assert allocated == total_activity_ms, label   # exact conservation
        spans[label] = spanning
        rows.append([
            label, len(bins_used), spanning,
            f"{spanning / N_ACTIVITIES * 100:.0f}%",
        ])
    print_table(
        f"E11: binning {N_ACTIVITIES} activities "
        f"(total time conserved at every width)",
        ["bin width", "bins touched", "spanning activities", "share"],
        rows,
    )
    assert spans["15 min"] > spans["1 hour"] > spans["4 hours"]
    benchmark.extra_info.update(
        {k.replace(" ", "_"): v for k, v in spans.items()}
    )
    benchmark(allocate, activities[:300], ADuration.parse("PT1H"))


def test_csv_roundtrip_preserves_intervals(benchmark, tmp_path,
                                           activities):
    path = str(tmp_path / "activities.csv")
    fields = ["activityId", "student", "category", "activity", "stress"]
    export_csv(path, activities, fields)
    back = import_csv(path)
    assert len(back) == len(activities)
    for original, restored in zip(activities, back):
        assert restored["activity"] == original["activity"]
        assert restored["category"] == original["category"]
    print(f"\nE11b: {len(back)} activities round-tripped through CSV "
          f"with intervals intact")
    benchmark(import_csv, path)
