"""E9 — BAD data pub/sub (paper §IV/§VII, ref [17]).

The Big Active Data extension's value proposition: many subscribers, few
query executions.  A notification channel with S subscribers drawn from P
distinct parameter bindings executes P queries per tick, not S — and
every subscriber still receives exactly the results matching their
parameters.

Shape assertions: executions per tick == distinct parameter count (not
subscriber count); deliveries == subscriber count; per-tick work grows
with P, not S.
"""

import random

import pytest

from repro import connect
from repro.bad import BADExtension

from conftest import print_table

N_REPORTS = 400
AREAS = [f"area{i}" for i in range(8)]


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    instance = connect(str(tmp_path_factory.mktemp("e9")))
    instance.execute("""
        CREATE TYPE ReportType AS { id: int, severity: int,
                                    area: string };
        CREATE DATASET Reports(ReportType) PRIMARY KEY id;
    """)
    rng = random.Random(61)
    for i in range(N_REPORTS):
        instance.execute(
            f'INSERT INTO Reports ({{"id": {i}, '
            f'"severity": {rng.randint(1, 5)}, '
            f'"area": "{rng.choice(AREAS)}"}});'
        )
    yield instance
    instance.close()


def build_bad(db, subscribers: int, distinct_params: int) -> BADExtension:
    bad = BADExtension(db)
    bad.create_broker("app")
    bad.create_channel(
        "Nearby", ["area", "minSeverity"],
        "SELECT VALUE r.id FROM Reports r "
        "WHERE r.area = $area AND r.severity >= $minSeverity;",
    )
    rng = random.Random(67)
    params = [(AREAS[i % len(AREAS)], 1 + i % 4)
              for i in range(distinct_params)]
    for _ in range(subscribers):
        area, severity = rng.choice(params)
        bad.subscribe("Nearby", "app", area, severity)
    return bad


def test_shared_execution_scaling(benchmark, db):
    rows = []
    for subscribers, distinct in [(4, 4), (32, 4), (256, 4), (256, 16)]:
        bad = build_bad(db, subscribers, distinct)
        executions = bad.tick()
        deliveries = len(bad.brokers["app"].drain())
        rows.append([subscribers, distinct, executions, deliveries,
                     f"{subscribers / executions:.0f}x"])
        assert executions <= distinct
        assert deliveries == subscribers
    print_table(
        "E9: channel executions vs subscriber count (one tick)",
        ["subscribers", "distinct params", "executions", "deliveries",
         "sharing factor"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    bad = build_bad(db, 64, 8)
    benchmark(bad.tick)


def test_deliveries_match_parameters(benchmark, db):
    bad = build_bad(db, 40, 8)
    bad.tick()
    checked = 0
    for delivery in bad.brokers["app"].deliveries:
        sub = bad.subscriptions[delivery.subscription_id]
        area, severity = sub.params
        expected = db.query(
            f"SELECT VALUE r.id FROM Reports r WHERE r.area = '{area}' "
            f"AND r.severity >= {severity};"
        )
        assert sorted(delivery.results) == sorted(expected)
        checked += 1
    assert checked == 40
    print(f"\nE9b: verified {checked} deliveries against direct queries")
    benchmark(bad.run_channel, "Nearby")
