"""E2 — B+ trees vs Linear Hashing: the Graefe lesson (paper §V-C).

"It is well-known how to efficiently load a B+ tree; it is *not* known
how to do the same for Linear Hashing.  Moreover, given a modest
allocation of memory, their I/O costs in practice will be the same."
(Paraphrasing Goetz Graefe via the paper — the answer to why real systems
stop after offering B+ trees.)

Two measurements over the same keyed records:

1. **Loading**: sorted bulk load into a B+ tree vs one-at-a-time inserts
   into a linear-hash index (it has no bulk path — that's the point),
   also vs one-at-a-time B+ tree inserts for fairness.
2. **Point lookups under a modest buffer budget**: per-probe page I/O of
   both structures.

Shape assertions: bulk load beats hash loading by a wide factor; lookup
I/O per probe is comparable (within ~2 pages).
"""

import random

import pytest

from repro.adm import serialize
from repro.storage import BTree, LinearHashIndex

from conftest import print_table

N_KEYS = 12_000
VALUE = serialize({"payload": "x" * 40})


def make_pairs():
    return [((i,), VALUE) for i in range(N_KEYS)]


@pytest.fixture(scope="module")
def loaded(tmp_path_factory):
    """Both structures loaded with the same keys, plus load-phase stats."""
    from conftest import StorageStack

    stack = StorageStack(str(tmp_path_factory.mktemp("e2")),
                         cache_pages=64)
    pairs = make_pairs()
    load_stats = {}

    stack.drop_caches()
    stack.reset_io()
    btree = BTree.bulk_load(stack.cache, stack.fm.create_file("bt_bulk"),
                            pairs)
    load_stats["btree bulk load"] = stack.device.stats.snapshot()

    shuffled = list(pairs)
    random.Random(5).shuffle(shuffled)

    stack.drop_caches()
    stack.reset_io()
    btree_1by1 = BTree.create(stack.cache,
                              stack.fm.create_file("bt_inserts"))
    for key, value in shuffled:
        btree_1by1.insert(key, value)
    stack.cache.flush_all()
    load_stats["btree inserts"] = stack.device.stats.snapshot()

    stack.drop_caches()
    stack.reset_io()
    lhash = LinearHashIndex.create(stack.cache,
                                   stack.fm.create_file("lh"))
    for key, value in shuffled:
        lhash.insert(key, value, unique=False)
    stack.cache.flush_all()
    load_stats["linear hash inserts"] = stack.device.stats.snapshot()

    yield stack, btree, lhash, load_stats
    stack.close()


def probe(stack, index, keys):
    """Cold-ish probes: returns pages read per probe."""
    stack.drop_caches()
    stack.reset_io()
    for key in keys:
        assert index.search(key) is not None
    return stack.device.stats.total_reads / len(keys)


def test_loading_cost(benchmark, loaded):
    stack, btree, lhash, load_stats = loaded
    rows = []
    io_us = {}
    for name, stats in load_stats.items():
        cost = stack.io_cost_us(stats)
        io_us[name] = cost
        rows.append([
            name,
            stats.total_writes,
            stats.total_reads,
            f"{cost / 1000:.1f}",
        ])
    print_table(
        f"E2a: loading {N_KEYS} records (page I/O)",
        ["method", "page writes", "page reads", "simulated ms"],
        rows,
    )
    # the lesson: bulk load is far cheaper than hash loading
    assert io_us["btree bulk load"] * 3 < io_us["linear hash inserts"]
    # and hash loading is no better than the B+ tree's worst case
    assert io_us["linear hash inserts"] > 0.5 * io_us["btree inserts"]

    benchmark.extra_info.update(
        {k.replace(" ", "_"): round(v / 1000, 1)
         for k, v in io_us.items()}
    )
    pairs = make_pairs()[:2000]
    benchmark(
        lambda: BTree.bulk_load(
            stack.cache,
            stack.fm.create_file(f"bt_tmp{random.random()}"), pairs)
    )


def test_lookup_cost_comparable(benchmark, loaded):
    stack, btree, lhash, _ = loaded
    rng = random.Random(17)
    keys = [(rng.randrange(N_KEYS),) for _ in range(400)]

    btree_rpp = probe(stack, btree, keys)
    hash_rpp = probe(stack, lhash, keys)

    print_table(
        "E2b: point-lookup I/O with a modest buffer (64 pages)",
        ["structure", "page reads / probe"],
        [["B+ tree", f"{btree_rpp:.2f}"],
         ["linear hash", f"{hash_rpp:.2f}"]],
    )
    # "their I/O costs in practice will be the same": within ~2 pages,
    # and the hash's constant-time advantage is marginal at best
    assert abs(btree_rpp - hash_rpp) < 2.0
    benchmark.extra_info.update({
        "btree_reads_per_probe": round(btree_rpp, 2),
        "hash_reads_per_probe": round(hash_rpp, 2),
    })
    benchmark(probe, stack, btree, keys[:100])
