"""E7c — secondary-index query acceleration (paper §III, feature 8).

The same query with and without the access-method rewrite enabled: the
index plan reads a sliver of the pages a scan reads, with identical
answers — across all three index families (B+ tree range, R-tree window,
keyword).
"""

import pytest

from repro import connect
from repro.datagen import GleambookGenerator

from conftest import print_table

N_MESSAGES = 15000

QUERIES = {
    "btree range": """
        SELECT VALUE m.messageId FROM Messages m
        WHERE m.authorId >= 100 AND m.authorId < 102;
    """,
    "rtree window": """
        SELECT VALUE m.messageId FROM Messages m
        WHERE spatial_intersect(m.senderLocation,
              rectangle("10.0,10.0 20.0,20.0"));
    """,
    "keyword": """
        SELECT VALUE m.messageId FROM Messages m
        WHERE ftcontains(m.message, 'wireless reachability customer service');
    """,
}


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    instance = connect(str(tmp_path_factory.mktemp("e7c")))
    instance.execute("""
        CREATE TYPE MessageType AS {
            messageId: int, authorId: int, message: string,
            senderLocation: point?
        };
        CREATE DATASET Messages(MessageType) PRIMARY KEY messageId;
        CREATE INDEX byAuthor ON Messages(authorId) TYPE BTREE;
        CREATE INDEX byLoc ON Messages(senderLocation) TYPE RTREE;
        CREATE INDEX byText ON Messages(message) TYPE KEYWORD;
    """)
    gen = GleambookGenerator(seed=47)
    for m in gen.messages(N_MESSAGES, num_users=1200):
        instance.cluster.insert_record("Default.Messages", m)
    instance.flush_dataset("Messages")
    yield instance
    instance.close()


def cold(db):
    """Empty every node's buffer cache (cold-cache comparison)."""
    for node in db.cluster.nodes:
        node.cache.flush_all()
        node.cache._pages.clear()
        node.cache._clock.clear()
        node.cache._hand = 0


def test_index_vs_scan(benchmark, db):
    rows = []
    speedups = {}
    for name, query in QUERIES.items():
        cold(db)
        indexed = db.execute(query)
        cold(db)
        scanned = db.execute(query, enable_index_access=False)
        assert sorted(indexed.rows) == sorted(scanned.rows), name
        t_idx = indexed.profile.simulated_ms
        t_scan = scanned.profile.simulated_ms
        speedups[name] = t_scan / max(t_idx, 1e-9)
        rows.append([
            name, len(indexed.rows), f"{t_scan:.2f}", f"{t_idx:.2f}",
            f"{speedups[name]:.1f}x",
        ])
    print_table(
        f"E7c: secondary index vs full scan over {N_MESSAGES} messages",
        ["query", "results", "scan ms", "index ms", "speedup"],
        rows,
    )
    assert all(s > 1.3 for s in speedups.values()), speedups
    benchmark.extra_info.update(
        {k.replace(" ", "_"): round(v, 1) for k, v in speedups.items()}
    )
    benchmark(db.execute, QUERIES["btree range"])
