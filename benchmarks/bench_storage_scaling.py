"""E6 — linear storage scaling through hash partitioning (paper §III).

"AsterixDB's data storage scales linearly through primary key-based hash
partitioning of all datasets."  Two axes:

* fixed data, growing partitions: per-partition record counts stay
  balanced, and ingest's simulated elapsed time (max over partitions)
  shrinks proportionally;
* fixed partitions, growing data: total pages grow linearly with records.
"""

import pytest

from repro.adm import serialize
from repro.storage.dataset_storage import PartitionStorage
from repro.storage.lsm import PrefixMergePolicy
from repro.adm.values import hash_value

from conftest import print_table

N_RECORDS = 8000


def record(i):
    return {"id": i, "alias": f"user{i}", "payload": "x" * 60}


def ingest(stack_factory, num_partitions: int, n: int):
    """Partitioned ingest; returns (parts, per-partition io cost list)."""
    stack = stack_factory(f"e6_p{num_partitions}_{n}")
    parts = []
    costs = []
    for p in range(num_partitions):
        parts.append(PartitionStorage(
            stack.fm, stack.cache, "ds", p, ("id",),
            memory_budget_bytes=32 * 1024,
            merge_policy=PrefixMergePolicy(),
        ))
    routed = [[] for _ in range(num_partitions)]
    for i in range(n):
        routed[hash_value((i,)) % num_partitions].append(record(i))
    for p, batch in enumerate(routed):
        stack.reset_io()
        for r in batch:
            parts[p].upsert(r)
        parts[p].flush_all()
        costs.append(stack.io_cost_us())
    return stack, parts, costs


def test_partition_scaling(benchmark, stack):
    rows = []
    elapsed = {}
    for num_partitions in [1, 2, 4, 8]:
        _, parts, costs = ingest(stack, num_partitions, N_RECORDS)
        counts = [p.count() for p in parts]
        assert sum(counts) == N_RECORDS
        imbalance = max(counts) / (sum(counts) / len(counts))
        # parallel elapsed = the slowest partition
        elapsed[num_partitions] = max(costs) / 1000
        rows.append([
            num_partitions, min(counts), max(counts),
            f"{imbalance:.2f}", f"{elapsed[num_partitions]:.1f}",
        ])
        assert imbalance < 1.25
    print_table(
        f"E6a: ingesting {N_RECORDS} records across P partitions "
        f"(elapsed = slowest partition)",
        ["partitions", "min recs", "max recs", "max/mean",
         "elapsed ms (simulated)"],
        rows,
    )
    assert elapsed[8] < elapsed[1] / 4, "ingest should parallelize"
    benchmark.extra_info.update(
        {f"p{k}_ms": round(v, 1) for k, v in elapsed.items()}
    )
    benchmark(lambda: ingest(stack, 4, 1000))


def test_data_volume_scaling(benchmark, stack):
    """Pages used grow linearly with record count (no superlinear blowup
    from the LSM machinery)."""
    rows = []
    pages = {}
    for n in [2000, 4000, 8000]:
        s, parts, _ = ingest(stack, 2, n)
        total_pages = sum(
            comp.handle.num_pages
            for part in parts
            for comp in part.primary.components
        )
        pages[n] = total_pages
        rows.append([n, total_pages, f"{total_pages / n * 1000:.1f}"])
    print_table(
        "E6b: storage footprint vs data volume (2 partitions)",
        ["records", "total pages", "pages per 1000 records"],
        rows,
    )
    per_1k = [pages[n] / n for n in pages]
    assert max(per_1k) / min(per_1k) < 1.3, "should stay ~linear"
    benchmark.extra_info.update(
        {f"n{k}_pages": v for k, v in pages.items()}
    )
    benchmark(lambda: ingest(stack, 2, 1000))
