"""E4 — operating beyond main memory (paper Fig. 2, ref [10]).

"A fundamental assumption from the start of the project has been that the
portion of data stored on a given node can well exceed the size of its
main memory, and likewise (at least potentially) for intermediate query
results."  The budgeted operators must therefore *degrade*, not die:
external sort and hybrid hash join spill runs/partitions to disk and
finish correctly at any budget.

Sweep: sort and join a fixed input under memory budgets from
comfortably-above-data-size down to 1/32 of it.

Shape assertions: results identical at every budget; spill I/O is zero
above the data size and grows as the budget shrinks; even the tightest
budget completes.
"""

import random

import pytest

from repro.common.config import ClusterConfig, NodeConfig
from repro.hyracks import (
    ClusterController,
    HashPartitionConnector,
    JobSpecification,
    OneToOneConnector,
)
from repro.hyracks.operators import (
    ExternalSortOp,
    HybridHashJoinOp,
    InMemorySourceOp,
    ResultWriterOp,
)

from conftest import print_table

N_TUPLES = 20_000
BUDGET_FRAMES = [2048, 64, 16, 4]      # frames of 16 tuples each


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    config = ClusterConfig(num_nodes=1, partitions_per_node=1,
                           frame_size=16,
                           node=NodeConfig(buffer_cache_pages=64))
    cc = ClusterController(str(tmp_path_factory.mktemp("e4")), config)
    yield cc
    cc.close()


def sort_job(data, frames):
    job = JobSpecification()
    src = job.add_operator(InMemorySourceOp(data))
    op = ExternalSortOp([0], memory_frames=frames)
    sort_id = job.add_operator(op)
    sink = job.add_operator(ResultWriterOp())
    job.connect(OneToOneConnector(), src, sort_id)
    job.connect(OneToOneConnector(), sort_id, sink)
    return job, op


def join_job(left, right, frames):
    job = JobSpecification()
    l_id = job.add_operator(InMemorySourceOp(left))
    r_id = job.add_operator(InMemorySourceOp(right))
    op = HybridHashJoinOp([0], [0], memory_frames=frames)
    j_id = job.add_operator(op)
    sink = job.add_operator(ResultWriterOp())
    job.connect(HashPartitionConnector([0]), l_id, j_id, 0)
    job.connect(HashPartitionConnector([0]), r_id, j_id, 1)
    job.connect(OneToOneConnector(), j_id, sink)
    return job, op


def test_external_sort_budget_sweep(benchmark, cluster):
    rng = random.Random(31)
    data = [(rng.randrange(10**9), f"pad{i:08d}") for i in range(N_TUPLES)]
    expected = sorted(t[0] for t in data)

    rows = []
    spills = {}
    for frames in BUDGET_FRAMES:
        job, op = sort_job(data, frames)
        result = cluster.run_job(job)
        got = [t[0] for t in result.tuples]
        assert got == expected, f"wrong order at {frames} frames"
        runs = max(op.last_run_counts)
        spills[frames] = result.profile.physical_writes
        rows.append([
            frames, frames * 16, runs,
            result.profile.physical_writes,
            result.profile.physical_reads,
            f"{result.profile.simulated_ms:.1f}",
        ])
    print_table(
        f"E4a: external sort of {N_TUPLES} tuples vs memory budget",
        ["frames", "tuples in memory", "spill runs", "page writes",
         "page reads", "simulated ms"],
        rows,
    )
    assert spills[2048] == 0, "no spill when everything fits"
    assert spills[4] > spills[64] > 0, "smaller budget -> more spill I/O"

    benchmark.extra_info.update(
        {f"frames_{k}_writes": v for k, v in spills.items()}
    )
    job, _ = sort_job(data[:4000], 16)
    benchmark(cluster.run_job, job)


def test_hash_join_budget_sweep(benchmark, cluster):
    rng = random.Random(37)
    left = [(i, f"l{i}") for i in range(N_TUPLES // 2)]
    right = [(rng.randrange(N_TUPLES // 2), f"r{i}")
             for i in range(N_TUPLES // 2)]
    from collections import Counter

    matches = Counter(t[0] for t in right)
    expected = sum(matches[t[0]] for t in left)

    rows = []
    spills = {}
    for frames in BUDGET_FRAMES:
        job, op = join_job(left, right, frames)
        result = cluster.run_job(job)
        assert len(result.tuples) == expected
        spills[frames] = result.profile.physical_writes
        rows.append([
            frames, op.spill_rounds, result.profile.physical_writes,
            result.profile.physical_reads,
            f"{result.profile.simulated_ms:.1f}",
        ])
    print_table(
        f"E4b: hybrid hash join ({N_TUPLES // 2} x {N_TUPLES // 2}) vs "
        f"memory budget",
        ["frames", "spill rounds", "page writes", "page reads",
         "simulated ms"],
        rows,
    )
    assert spills[2048] == 0
    assert spills[4] > 0

    benchmark.extra_info.update(
        {f"frames_{k}_writes": v for k, v in spills.items()}
    )
    job, _ = join_job(left[:4000], right[:4000], 16)
    benchmark(cluster.run_job, job)
