"""E10 — LSM merge-policy ablation (DESIGN.md's design-choice bench).

The read-vs-write amplification trade-off behind every number in E1: the
same ingest-then-read workload under no-merge, constant, and prefix
policies.

Shape assertions: no-merge writes the fewest pages but accumulates the
most components (and pays the most read I/O per lookup); constant bounds
components at the cost of rewriting data in merges; prefix lands between;
all three agree on the data.
"""

import random

import pytest

from repro.storage.lsm import (
    ConstantMergePolicy,
    LSMBTree,
    NoMergePolicy,
    PrefixMergePolicy,
)

from conftest import print_table

N_RECORDS = 8000
VALUE = b"v" * 60

POLICIES = {
    "no-merge": NoMergePolicy,
    "constant(4)": lambda: ConstantMergePolicy(4),
    "prefix": lambda: PrefixMergePolicy(max_mergable_size=100_000,
                                        max_tolerance_count=4),
}


def ingest(stack_factory, name, policy_factory):
    stack = stack_factory(f"e10_{name.replace('(', '_').strip(')')}")
    lsm = LSMBTree(stack.fm, stack.cache, "t",
                   memory_budget_bytes=16 * 1024,
                   merge_policy=policy_factory())
    order = list(range(N_RECORDS))
    random.Random(3).shuffle(order)
    stack.reset_io()
    for i in order:
        lsm.upsert((i,), VALUE)
    lsm.flush()
    ingest_stats = stack.device.stats.snapshot()
    return stack, lsm, ingest_stats


def lookup_reads(stack, lsm, probes=300):
    stack.drop_caches()
    stack.reset_io()
    rng = random.Random(9)
    for _ in range(probes):
        assert lsm.search((rng.randrange(N_RECORDS),)) is not None
    return stack.device.stats.total_reads / probes


def test_merge_policy_tradeoff(benchmark, stack):
    rows = []
    measures = {}
    for name, policy_factory in POLICIES.items():
        s, lsm, ingest_stats = ingest(stack, name, policy_factory)
        reads_per_probe = lookup_reads(s, lsm)
        assert len(lsm) == N_RECORDS
        measures[name] = {
            "components": lsm.num_disk_components,
            "ingest_writes": ingest_stats.total_writes,
            "merges": lsm.stats.merges,
            "reads_per_probe": reads_per_probe,
        }
        rows.append([
            name, lsm.num_disk_components, lsm.stats.merges,
            ingest_stats.total_writes, f"{reads_per_probe:.2f}",
        ])
    print_table(
        f"E10: merge policies, {N_RECORDS} random upserts then point "
        f"lookups",
        ["policy", "disk components", "merges", "ingest page writes",
         "reads / probe"],
        rows,
    )
    no_merge = measures["no-merge"]
    constant = measures["constant(4)"]
    prefix = measures["prefix"]
    # write amplification: merging rewrites data
    assert no_merge["ingest_writes"] < constant["ingest_writes"]
    # read amplification: more components -> more probe I/O
    assert no_merge["components"] > prefix["components"]
    assert no_merge["reads_per_probe"] > constant["reads_per_probe"]
    # prefix is the compromise
    assert (constant["components"]
            <= prefix["components"]
            <= no_merge["components"])

    benchmark.extra_info.update({
        k.replace("(", "_").strip(")"): v for k, v in measures.items()
    })
    s, lsm, _ = ingest(stack, "bench", POLICIES["prefix"])
    benchmark(lookup_reads, s, lsm, 100)
