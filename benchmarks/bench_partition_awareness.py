"""E12 (ablation) — the "data-partition-aware" part of feature 3.

Algebricks tracks partitioning properties so exchanges appear only where
required.  The contrast that shows what the reasoning is worth:

* a primary-key/primary-key join over two pk-partitioned scans compiles
  with **zero** hash exchanges (the property proves co-location), while
* the same join on non-key attributes must hash-repartition both inputs,
  moving ~(P-1)/P of every tuple across the simulated network.

Shape assertions: the pk-join's plan contains no HashPartitionConnector
and its network traffic is only the final result gather; the attribute
join's plan contains two and moves more than one full input's worth of
tuples.
"""

import pytest

from repro.algebricks import MetadataView, compile_plan, optimize
from repro.algebricks.logical import (
    AggCall,
    Aggregate,
    Assign,
    DataSourceScan,
    DistributeResult,
    Join,
)
from repro.algebricks.expressions import LCall, LConst, LVar
from repro.common.config import ClusterConfig
from repro.hyracks import ClusterController, HashPartitionConnector

from conftest import print_table

N_RECORDS = 3000


class ClusterMetadata(MetadataView):
    def __init__(self, cluster):
        self.cluster = cluster

    def pk_fields(self, dataset):
        return self.cluster.datasets[dataset].pk_fields

    def secondary_indexes(self, dataset):
        return []

    def is_external(self, dataset):
        return False


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    cc = ClusterController(
        str(tmp_path_factory.mktemp("e12")),
        ClusterConfig(num_nodes=2, partitions_per_node=2),
    )
    cc.create_dataset("A", ("id",))
    cc.create_dataset("B", ("id",))
    for i in range(N_RECORDS):
        cc.insert_record("A", {"id": i, "x": i % 97})
        cc.insert_record("B", {"id": i, "y": i % 97})
    yield cc
    cc.close()


def fa(var, name):
    return LCall("field_access", [LVar(var), LConst(name)])


def pk_join_plan():
    """join on the partitioning key: provably co-located."""
    left = DataSourceScan("A", [1], 2)
    right = DataSourceScan("B", [3], 4)
    join = Join(LCall("eq", [LVar(1), LVar(3)]), inputs=[left, right])
    count = Aggregate([AggCall(5, "count_star", LConst(1))],
                      inputs=[join])
    return DistributeResult(LVar(5), inputs=[count])


def attr_join_plan():
    """join on non-key attributes: repartitioning is unavoidable."""
    left = Assign(5, fa(2, "x"), inputs=[DataSourceScan("A", [1], 2)])
    right = Assign(6, fa(4, "y"), inputs=[DataSourceScan("B", [3], 4)])
    join = Join(LCall("eq", [LVar(5), LVar(6)]), inputs=[left, right])
    count = Aggregate([AggCall(7, "count_star", LConst(1))],
                      inputs=[join])
    return DistributeResult(LVar(7), inputs=[count])


def run(cluster, plan_factory):
    md = ClusterMetadata(cluster)
    plan = optimize(plan_factory(), md)
    job, _ = compile_plan(plan, md, cluster.num_partitions)
    hash_exchanges = sum(
        isinstance(e.connector, HashPartitionConnector) for e in job.edges
    )
    result = cluster.run_job(job)
    return result.tuples[0][0], result.profile, hash_exchanges


def test_exchange_free_pk_join(benchmark, cluster):
    pk_count, pk_profile, pk_exchanges = run(cluster, pk_join_plan)
    at_count, at_profile, at_exchanges = run(cluster, attr_join_plan)
    assert pk_count == N_RECORDS
    assert at_count > 0

    print_table(
        f"E12 (ablation): partition-property reasoning, "
        f"{N_RECORDS} records x 4 partitions",
        ["query", "hash exchanges", "net tuples", "simulated ms"],
        [
            ["pk = pk join (co-located)", pk_exchanges,
             pk_profile.connector_network_tuples,
             f"{pk_profile.simulated_ms:.2f}"],
            ["x = y join (must reshuffle)", at_exchanges,
             at_profile.connector_network_tuples,
             f"{at_profile.simulated_ms:.2f}"],
        ],
    )
    # the property reasoning removed every exchange from the pk join
    assert pk_exchanges == 0
    assert at_exchanges == 2
    # pk join network = only the pre-aggregate gather of its own output
    # (no input ever re-shuffles); the attribute join moves far more
    assert pk_profile.connector_network_tuples < N_RECORDS
    assert at_profile.connector_network_tuples > 10 * N_RECORDS

    benchmark.extra_info.update({
        "pk_join_net_tuples": pk_profile.connector_network_tuples,
        "attr_join_net_tuples": at_profile.connector_network_tuples,
    })
    benchmark(run, cluster, pk_join_plan)
