"""E1 — the LSM spatial-index study (paper §V-B, ref [23]).

The paper's most concrete experimental story: a PhD student implemented
LSM versions of several spatial access methods (R-tree, Hilbert- and
Z-order-linearized B+ trees, a grid scheme), ran *end-to-end* queries,
and found that "though some of the differences between them *within*
their portion of the query times were significant, those index time
differences were watered down to the ±10% range due to the rest of the
end-to-end query costs (the eventual data access)" — because once the
index yields qualifying keys, the records themselves must be fetched
through the primary index (with the [26] sorted-reference optimization).

This bench rebuilds that experiment: same points in all four indexes, a
window-query workload at two selectivities, measuring (a) index-only
simulated I/O time and (b) end-to-end time including the primary fetch.

Shape assertions:
  * within-index relative spread is large (the interesting differences
    the senior researchers argued about are real);
  * end-to-end spread collapses to roughly the paper's ±10% band;
  * the fetch phase dominates end-to-end cost.
"""

import random

import pytest

from repro.adm import APoint, ARectangle
from repro.datagen import GleambookGenerator
from repro.index import make_spatial_index
from repro.storage.dataset_storage import PartitionStorage
from repro.storage.lsm import NoMergePolicy

from conftest import print_table

N_POINTS = 6000
BOUNDS = (0.0, 0.0, 100.0, 100.0)
KINDS = ["rtree", "hilbert", "zorder", "grid"]
WINDOWS_PER_SELECTIVITY = 12
SELECTIVITIES = {"0.25%": 5.0, "1%": 10.0}     # window side length


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """Messages in a primary store + the same points in all 4 indexes."""
    from conftest import StorageStack

    stack = StorageStack(str(tmp_path_factory.mktemp("e1")),
                         cache_pages=96)
    gen = GleambookGenerator(seed=11, spatial_bounds=BOUNDS)
    messages = [
        m for m in gen.messages(int(N_POINTS * 1.2), num_users=500)
        if "senderLocation" in m
    ][:N_POINTS]
    primary = PartitionStorage(stack.fm, stack.cache, "Messages", 0,
                               ("messageId",),
                               memory_budget_bytes=64 * 1024,
                               merge_policy=NoMergePolicy())
    indexes = {}
    for kind in KINDS:
        indexes[kind] = make_spatial_index(
            kind, stack.fm, stack.cache, f"sp_{kind}", bounds=BOUNDS,
            memory_budget_bytes=64 * 1024, merge_policy=NoMergePolicy(),
        )
    for m in messages:
        primary.upsert(m)
        p = m["senderLocation"]
        for index in indexes.values():
            index.insert(p, (m["messageId"],))
    primary.flush_all()
    for index in indexes.values():
        index.flush()
    yield stack, primary, indexes, messages
    stack.close()


def windows(side: float, count: int, seed: int = 3):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        x0 = rng.uniform(0, 100 - side)
        y0 = rng.uniform(0, 100 - side)
        out.append(ARectangle(APoint(x0, y0),
                              APoint(x0 + side, y0 + side)))
    return out


def run_queries(stack, primary, index, query_windows, *,
                fetch: bool, sort_pks: bool = True):
    """Returns (index_us, fetch_us, result_count) in simulated time."""
    index_us = fetch_us = 0.0
    results = 0
    for window in query_windows:
        stack.drop_caches()
        stack.reset_io()
        pks = index.query(window)
        index_us += stack.io_cost_us()
        index_us += len(pks) * 0.5          # per-candidate CPU charge
        if fetch:
            stack.reset_io()
            records = list(primary.fetch_many(pks, sort=sort_pks))
            fetch_us += stack.io_cost_us()
            results += len(records)
        else:
            results += len(pks)
    return index_us, fetch_us, results


@pytest.mark.parametrize("selectivity", list(SELECTIVITIES))
def test_spatial_index_shootout(benchmark, workload, selectivity):
    stack, primary, indexes, _ = workload
    side = SELECTIVITIES[selectivity]
    query_windows = windows(side, WINDOWS_PER_SELECTIVITY)

    index_only = {}
    end_to_end = {}
    counts = {}
    for kind in KINDS:
        idx_us, fetch_us, count = run_queries(
            stack, primary, indexes[kind], query_windows, fetch=True)
        index_only[kind] = idx_us
        end_to_end[kind] = idx_us + fetch_us
        counts[kind] = count

    # all indexes must agree on the answer
    assert len(set(counts.values())) == 1

    def spread(d):
        lo, hi = min(d.values()), max(d.values())
        return (hi - lo) / ((hi + lo) / 2)

    rows = []
    for kind in KINDS:
        rows.append([
            kind,
            f"{index_only[kind] / 1000:.2f}",
            f"{(end_to_end[kind] - index_only[kind]) / 1000:.2f}",
            f"{end_to_end[kind] / 1000:.2f}",
            f"{index_only[kind] / end_to_end[kind] * 100:.0f}%",
        ])
    print_table(
        f"E1: spatial index shoot-out, {N_POINTS} points, "
        f"selectivity {selectivity} "
        f"({WINDOWS_PER_SELECTIVITY} windows, simulated ms)",
        ["index", "index-only", "pk fetch", "end-to-end", "index share"],
        rows,
    )
    within_spread = spread(index_only)
    e2e_spread = spread(end_to_end)
    print(f"  within-index spread: {within_spread * 100:.0f}%   "
          f"end-to-end spread: {e2e_spread * 100:.0f}%   (paper: "
          f"'significant' vs '±10% range')")

    # the paper's punchline, as assertions
    assert within_spread > e2e_spread, \
        "end-to-end must compress the differences"
    assert e2e_spread < 0.35, "end-to-end spread should be modest"
    fetch_share = 1 - min(
        index_only[k] / end_to_end[k] for k in KINDS
    )
    assert fetch_share > 0.5, "the record fetch should dominate"

    benchmark.extra_info.update({
        "selectivity": selectivity,
        "within_index_spread": round(within_spread, 3),
        "end_to_end_spread": round(e2e_spread, 3),
        "index_only_ms": {k: round(v / 1000, 2)
                          for k, v in index_only.items()},
        "end_to_end_ms": {k: round(v / 1000, 2)
                          for k, v in end_to_end.items()},
    })

    # wall-clock: one end-to-end R-tree query round
    benchmark(
        run_queries, stack, primary, indexes["rtree"],
        query_windows[:3], fetch=True,
    )


def test_sorted_pk_fetch_matters(benchmark, workload):
    """The [26] trick the end-to-end numbers depend on: sorting PKs before
    fetching beats fetching in index-emission order."""
    stack, primary, indexes, _ = workload
    # large windows: enough qualifying keys per primary leaf page that
    # sorted references turn random probes into near-sequential access
    query_windows = windows(45.0, 6, seed=5)

    _, sorted_us, _ = run_queries(stack, primary, indexes["rtree"],
                                  query_windows, fetch=True,
                                  sort_pks=True)
    _, unsorted_us, _ = run_queries(stack, primary, indexes["rtree"],
                                    query_windows, fetch=True,
                                    sort_pks=False)
    print_table(
        "E1b: primary fetch with vs without sorted references ([26])",
        ["fetch order", "simulated ms"],
        [["sorted PKs", f"{sorted_us / 1000:.2f}"],
         ["index order", f"{unsorted_us / 1000:.2f}"]],
    )
    assert sorted_us <= unsorted_us * 1.05
    benchmark.extra_info.update({
        "sorted_ms": round(sorted_us / 1000, 2),
        "unsorted_ms": round(unsorted_us / 1000, 2),
    })
    benchmark(run_queries, stack, primary, indexes["rtree"],
              query_windows[:3], fetch=True)
