"""E7a — external (in-situ) vs native storage (paper §III items 5-6,
Fig. 3(b)).

"Support for querying and indexing of external data (e.g., data in HDFS)
as well as natively stored data": the same access-log analytics run (a)
in situ over localfs, (b) in situ over the simulated HDFS, and (c) over
the same records loaded into a native dataset.

Shape assertions: identical answers from all three; selective queries are
cheaper on native storage (indexes + partitioned B+ trees), while the
external path needs no load step at all — the actual trade-off the
feature embodies.
"""

import os

import pytest

from repro import connect
from repro.datagen import GleambookGenerator

from conftest import print_table

N_LOG_LINES = 4000
N_USERS = 150

SCHEMA = """
CREATE TYPE AccessLogType AS CLOSED {{
    ip: string, time: string, user: string, verb: string,
    `path`: string, stat: int32, size: int32
}};
CREATE EXTERNAL DATASET LocalLog(AccessLogType)
USING localfs
(("path"="{path}"), ("format"="delimited-text"), ("delimiter"="|"));
CREATE EXTERNAL DATASET HdfsLog(AccessLogType)
USING hdfs
(("path"="/logs/access.txt"), ("format"="delimited-text"),
 ("delimiter"="|"));
CREATE TYPE StoredLogType AS {{
    logId: int, ip: string, time: string, user: string, verb: string,
    `path`: string, stat: int32, size: int32
}};
CREATE DATASET StoredLog(StoredLogType) PRIMARY KEY logId;
"""

ANALYTICS = """
SELECT verb, COUNT(*) AS hits, SUM(l.size) AS bytes
FROM {source} l
GROUP BY l.verb AS verb ORDER BY verb;
"""

SELECTIVE = """
SELECT VALUE COUNT(*) FROM {source} l WHERE l.stat = 500;
"""


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    base = tmp_path_factory.mktemp("e7")
    instance = connect(str(base / "db"))
    gen = GleambookGenerator(seed=41)
    aliases = [u["alias"] for u in gen.users(N_USERS)]
    lines = list(gen.access_log_lines(N_LOG_LINES, aliases))
    log_path = str(base / "access.txt")
    with open(log_path, "w") as f:
        f.write("\n".join(lines) + "\n")
    instance.hdfs.put_lines("/logs/access.txt", lines)
    instance.execute(SCHEMA.format(path=log_path))
    for i, line in enumerate(lines):
        ip, t, user, verb, path, stat, size = line.split("|")
        instance.cluster.insert_record("Default.StoredLog", {
            "logId": i, "ip": ip, "time": t, "user": user, "verb": verb,
            "path": path, "stat": int(stat), "size": int(size),
        })
    instance.flush_dataset("StoredLog")
    yield instance
    instance.close()


def test_in_situ_vs_native(benchmark, db):
    results = {}
    times = {}
    for source in ("LocalLog", "HdfsLog", "StoredLog"):
        r = db.execute(ANALYTICS.format(source=source))
        results[source] = r.rows
        times[source] = r.profile.simulated_ms
    assert results["LocalLog"] == results["HdfsLog"] == results["StoredLog"]

    rows = [[s, f"{times[s]:.2f}"] for s in results]
    print_table(
        f"E7a: full-log analytics over {N_LOG_LINES} lines "
        f"(same answer, three homes)",
        ["source", "simulated ms"],
        rows,
    )
    benchmark.extra_info.update(
        {k: round(v, 2) for k, v in times.items()}
    )
    benchmark(db.execute, ANALYTICS.format(source="LocalLog"))


def test_selective_queries_favor_native(benchmark, db):
    db.execute("CREATE INDEX byStat ON StoredLog(stat);")
    external = db.execute(SELECTIVE.format(source="LocalLog"))
    native = db.execute(SELECTIVE.format(source="StoredLog"))
    assert external.rows == native.rows
    print_table(
        "E7b: selective predicate (stat = 500)",
        ["source", "simulated ms", "plan uses"],
        [["LocalLog (in situ)", f"{external.profile.simulated_ms:.2f}",
          "full external scan"],
         ["StoredLog (native+index)", f"{native.profile.simulated_ms:.2f}",
          "btree-index-search"]],
    )
    assert "index-search" in native.plan
    assert native.profile.simulated_ms < external.profile.simulated_ms
    benchmark.extra_info.update({
        "external_ms": round(external.profile.simulated_ms, 2),
        "native_ms": round(native.profile.simulated_ms, 2),
    })
    benchmark(db.execute, SELECTIVE.format(source="StoredLog"))
