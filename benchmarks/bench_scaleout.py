"""E3 — Hyracks partitioned-parallel scale-out (paper §III, ref [13]).

"The runtime engine ... is the Hyracks data-parallel platform ... that at
one point was scale-tested on a large (180 nodes and 1440 cores) cluster."
No Yahoo! cluster here (DESIGN.md, Substitutions): the simulated clock —
elapsed(stage) = max over partitions — reproduces the scale-out *shape*
on one machine.

Workload: a fixed Gleambook dataset; a join + group-by query (messages
per user age band) executed on clusters of 1, 2, 4, and 8 nodes.

Shape assertions: simulated time decreases monotonically with nodes, and
the 8-node speedup over 1 node is substantial (near-linear minus exchange
overhead), while every configuration returns identical results.
"""

import pytest

from repro import ClusterConfig, NodeConfig, connect
from repro.datagen import GleambookGenerator

from conftest import print_table

N_USERS = 400
N_MESSAGES = 2000
NODE_COUNTS = [1, 2, 4, 8]

QUERY = """
SELECT age, COUNT(*) AS messages
FROM Users u JOIN Messages m ON m.authorId = u.id
GROUP BY u.age AS age
ORDER BY age;
"""

SCHEMA = """
CREATE TYPE UserType AS { id: int, alias: string, age: int };
CREATE TYPE MessageType AS { messageId: int, authorId: int,
                             message: string };
CREATE DATASET Users(UserType) PRIMARY KEY id;
CREATE DATASET Messages(MessageType) PRIMARY KEY messageId;
"""


def build_instance(base_dir: str, nodes: int):
    config = ClusterConfig(
        num_nodes=nodes, partitions_per_node=2,
        node=NodeConfig(buffer_cache_pages=256),
    )
    db = connect(base_dir, config)
    db.execute(SCHEMA)
    gen = GleambookGenerator(seed=23)
    users = list(gen.users(N_USERS))
    for i, user in enumerate(users):
        db.cluster.insert_record("Default.Users", {
            "id": user["id"], "alias": user["alias"],
            "age": 18 + i % 40,
        })
    for m in gen.messages(N_MESSAGES, num_users=N_USERS):
        db.cluster.insert_record("Default.Messages", {
            "messageId": m["messageId"], "authorId": m["authorId"],
            "message": m["message"],
        })
    db.flush_dataset("Users")
    db.flush_dataset("Messages")
    return db


@pytest.fixture(scope="module")
def instances(tmp_path_factory):
    dbs = {
        n: build_instance(str(tmp_path_factory.mktemp(f"e3_n{n}")), n)
        for n in NODE_COUNTS
    }
    yield dbs
    for db in dbs.values():
        db.close()


def test_scaleout_shape(benchmark, instances):
    times = {}
    answers = {}
    for n, db in instances.items():
        result = db.execute(QUERY)
        times[n] = result.profile.simulated_ms
        answers[n] = result.rows

    # identical answers at every width
    baseline = answers[1]
    for n in NODE_COUNTS[1:]:
        assert answers[n] == baseline

    rows = []
    for n in NODE_COUNTS:
        speedup = times[1] / times[n]
        rows.append([
            n, n * 2, f"{times[n]:.2f}", f"{speedup:.2f}x",
            f"{speedup / n * 100:.0f}%",
        ])
    print_table(
        f"E3: join+group-by over {N_MESSAGES} messages, scaling the "
        f"simulated cluster",
        ["nodes", "partitions", "simulated ms", "speedup", "efficiency"],
        rows,
    )

    # monotone improvement, substantial at 8 nodes
    for a, b in zip(NODE_COUNTS, NODE_COUNTS[1:]):
        assert times[b] < times[a], f"{b} nodes slower than {a}"
    assert times[1] / times[8] > 3.0

    benchmark.extra_info.update({
        f"nodes_{n}_ms": round(times[n], 2) for n in NODE_COUNTS
    })
    benchmark.extra_info["speedup_8x"] = round(times[1] / times[8], 2)
    benchmark(instances[8].execute, QUERY)


def test_ingest_scales_with_partitions(benchmark, instances):
    """Paper §III: 'data storage scales linearly through primary key-based
    hash partitioning' — partitions stay balanced at every width."""
    rows = []
    for n, db in instances.items():
        counts = []
        for p in range(db.cluster.num_partitions):
            node = db.cluster.node_of_partition(p)
            counts.append(
                node.get_partition("Default.Messages", p).count()
            )
        imbalance = max(counts) / (sum(counts) / len(counts))
        rows.append([n, len(counts), min(counts), max(counts),
                     f"{imbalance:.2f}"])
        assert sum(counts) == N_MESSAGES
        assert imbalance < 1.5
    print_table(
        "E3b: hash-partitioned storage balance",
        ["nodes", "partitions", "min records", "max records",
         "max/mean"],
        rows,
    )
    benchmark(lambda: sum(
        1 for _ in instances[8].cluster.scan_dataset("Default.Messages")
    ))
